"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the benchmark suite with categories and limiter classes.
* ``run BENCH`` — simulate one benchmark under one architecture.
* ``compare BENCH`` — baseline vs VT vs ideal-sched side by side.
* ``experiment ID`` — regenerate a paper artifact (E1..E12, X1..X3).
* ``sweep`` — the (benchmark x arch) matrix through the process-isolated
  orchestrator: parallel workers, wall-clock kill, retries, and a
  journal that makes the sweep resumable (``--resume DIR``); ``--store``
  adds the cross-sweep content-addressed result cache and ``--format
  json`` a machine-readable summary.
* ``serve`` — HTTP job service over the result store: submit/poll/stream
  simulation jobs with request dedupe, bounded-queue backpressure (429),
  and crash-safe caching.
* ``doctor`` — sanitizer-on smoke sweep over the whole suite; ``--store``
  audits a result store (verify checksums, quarantine, GC) first.
* ``occupancy BENCH`` — the occupancy calculator's view of a kernel.
* ``disasm BENCH`` — disassemble a benchmark kernel.
* ``profile BENCH`` — static instruction-mix / control-flow profile.
* ``lint [BENCH]`` — static kernel verifier (``--format json`` for CI).
* ``predict [BENCH]`` — static performance oracle: limiter, idle-cycle
  class, VT tier; ``--check`` simulates every cell and fails on any
  prediction/measurement disagreement (the CI agreement gate).
* ``selfcheck [ROOT]`` — AST static analyzer over the simulator's own
  sources: shard-isolation race detection, determinism lint, and
  serialization schema-drift checks (``--strict``, ``--format json``,
  ``--baseline FILE``).

Failures exit cleanly: simulation timeouts and deadlocks print a one-line
error plus the path of the forensic dump (exit 1) instead of a traceback,
and an interrupted ``sweep`` prints how to resume it.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import tempfile

from repro.analysis.experiments import ALL_EXPERIMENTS, doctor_report
from repro.analysis.runner import run_benchmark
from repro.analysis.tables import format_table
from repro.core.occupancy import occupancy
from repro.kernels.registry import all_benchmarks, get
from repro.sim.config import ArchMode, scaled_fermi
from repro.sim.gpu import ProgressDeadlock, SimulationTimeout
from repro.sim.sanitizer import InvariantViolation


def positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def _config(args, arch: str):
    overrides = {}
    if getattr(args, "scheduler", None):
        overrides["warp_scheduler"] = args.scheduler
    if getattr(args, "sanitize", False):
        overrides["sanitize"] = True
    if getattr(args, "no_fast_forward", False):
        overrides["fast_forward"] = False
    if getattr(args, "engine", None):
        overrides["engine"] = args.engine
    if getattr(args, "sim_jobs", None):
        overrides["sim_jobs"] = args.sim_jobs
    return scaled_fermi(num_sms=args.sms, arch=arch, **overrides)


def cmd_list(_args) -> int:
    from repro.core.occupancy import limiter_summary

    rows = []
    for bench in all_benchmarks():
        rows.append((bench.name, bench.category,
                     limiter_summary(bench.kernel)["limiter"], bench.suite,
                     bench.description))
    print(format_table(("benchmark", "class", "limiter", "models", "description"), rows))
    return 0


def cmd_run(args) -> int:
    bench = get(args.benchmark)
    cfg = _config(args, args.arch)
    if args.profile:
        from repro.analysis.profiling import (
            format_profile,
            profile_run,
            write_profile,
        )

        record, report = profile_run(
            lambda: run_benchmark(bench, cfg, scale=args.scale,
                                  max_cycles=args.max_cycles))
        write_profile(report, args.profile)
    else:
        report = None
        record = run_benchmark(bench, cfg, scale=args.scale,
                               max_cycles=args.max_cycles)
    print(f"{bench.name} on {args.arch} (scale {args.scale:g}, {args.sms} SMs):")
    print(record.stats.summary())
    if report is not None:
        print(f"\ncomponent time (cProfile, written to {args.profile}):")
        print(format_profile(report))
    return 0


def cmd_compare(args) -> int:
    bench = get(args.benchmark)
    rows = []
    baseline_cycles = None
    for arch in ArchMode.ALL:
        record = run_benchmark(bench, _config(args, arch), scale=args.scale,
                               max_cycles=args.max_cycles)
        stats = record.stats
        if baseline_cycles is None:
            baseline_cycles = stats.cycles
        rows.append((
            arch, stats.cycles, f"{stats.ipc:.3f}",
            f"{stats.avg_resident_warps:.1f}", stats.total_swaps,
            f"x{baseline_cycles / stats.cycles:.3f}",
        ))
    print(format_table(
        ("architecture", "cycles", "IPC", "resident warps/SM", "swaps", "speedup"),
        rows, title=f"{bench.name} (scale {args.scale:g}, {args.sms} SMs)",
    ))
    return 0


def cmd_experiment(args) -> int:
    key = args.id.upper()
    if key not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; choose from {', '.join(ALL_EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    fn = ALL_EXPERIMENTS[key]
    params = inspect.signature(fn).parameters
    kwargs = {}
    if key not in ("E1", "E2", "E3", "E11"):
        kwargs["scale"] = args.scale
    # Crash tolerance is opt-out: experiments that support keep_going mark
    # failing cells FAILED(<reason>) unless --strict asks them to raise.
    if "keep_going" in params:
        kwargs["keep_going"] = not args.strict
    # --jobs routes the experiment's simulation runs through the
    # process-isolated sweep orchestrator (static tables have no runs).
    if "jobs" in params and args.jobs is not None:
        kwargs["jobs"] = args.jobs
    # --store reads/writes the experiment's cells through the global
    # content-addressed result store (repeat runs stop re-simulating).
    if "store" in params and args.store is not None:
        kwargs["store"] = args.store
    if "liveness" in params and args.liveness:
        kwargs["liveness"] = True
    report, _data = fn(**kwargs)
    print(report)
    return 0


def cmd_sweep(args) -> int:
    import json

    from repro.analysis.experiments import sweep_report

    if args.resume and args.dir and args.resume != args.dir:
        print("error: pass either --dir or --resume, not both", file=sys.stderr)
        return 2
    sweep_dir = args.resume or args.dir
    if sweep_dir is None:
        sweep_dir = tempfile.mkdtemp(prefix="repro-sweep-")
    # In JSON mode stdout carries only the summary document.
    info = sys.stderr if args.format == "json" else sys.stdout
    print(f"sweep directory: {sweep_dir} "
          f"(resume an interrupted sweep with: repro sweep --resume {sweep_dir} …)",
          file=info)
    try:
        report, result = sweep_report(
            benches=args.benchmarks or None,
            scale=args.scale, sms=args.sms,
            jobs=0 if args.serial else args.jobs,
            wall_timeout=args.wall_timeout, retries=args.retries,
            sweep_dir=sweep_dir, resume=args.resume is not None,
            max_cycles=args.max_cycles, sanitize=args.sanitize,
            fast_forward=not args.no_fast_forward,
            engine=args.engine, sim_jobs=args.sim_jobs,
            progress=lambda message: print(f"  {message}", file=sys.stderr),
            store=args.store,
        )
    except KeyboardInterrupt:
        print(f"\ninterrupted; completed cells are journaled — resume with:\n"
              f"  repro sweep --resume {sweep_dir} …", file=sys.stderr)
        return 130
    if args.format == "json":
        print(json.dumps(result.to_summary(), indent=2))
    else:
        print(report)
    return 0 if result.ok else 1


def cmd_doctor(args) -> int:
    report, data = doctor_report(scale=args.scale, sms=args.sms,
                                 benches=args.benchmarks or None,
                                 fuzz_dir=args.fuzz_dir, store=args.store)
    print(report)
    stale = any(entry.get("stale") or "error" in entry
                for entry in data.get("reproducers", []))
    store_sick = ("store_report" in data
                  and not data["store_report"].healthy)
    return 1 if (data["failures"] or stale or store_sick) else 0


def cmd_fuzz(args) -> int:
    from repro.fuzz.campaign import (
        CANARY_FAULT,
        StaleReproducerError,
        load_reproducer,
        replay_reproducer,
        run_campaign,
    )
    from repro.fuzz.differential import DEFAULT_MAX_CYCLES
    from repro.fuzz.generator import GenConfig

    max_cycles = args.max_cycles or DEFAULT_MAX_CYCLES

    if args.replay:
        try:
            result = replay_reproducer(args.replay, max_cycles=max_cycles)
        except StaleReproducerError as exc:
            print(f"stale reproducer: {exc}", file=sys.stderr)
            return 2
        if result.ok:
            print(f"{args.replay}: no divergence — the dumped bug no longer "
                  f"reproduces on this tree")
            return 0
        print(f"{args.replay}: divergence reproduces "
              f"({result.instructions} instructions)")
        for divergence in result.divergences:
            print(f"  {divergence}")
        return 1

    if args.resume and args.dir and args.resume != args.dir:
        print("error: pass either --dir or --resume, not both", file=sys.stderr)
        return 2
    fuzz_dir = args.resume or args.dir
    if fuzz_dir is None:
        fuzz_dir = tempfile.mkdtemp(prefix="repro-fuzz-")
    print(f"fuzz directory: {fuzz_dir} "
          f"(resume an interrupted campaign with: repro fuzz --resume {fuzz_dir} …)")

    fault = CANARY_FAULT if args.canary else None
    gen = GenConfig(max_segments=args.max_segments)
    try:
        result = run_campaign(
            args.n, seed=args.seed, gen=gen,
            jobs=0 if args.serial else args.jobs,
            wall_timeout=args.wall_timeout, time_budget=args.time_budget,
            directory=fuzz_dir, resume=args.resume is not None,
            fault=fault, oracle=args.oracle, max_cycles=max_cycles,
            progress=lambda message: print(f"  {message}", file=sys.stderr),
        )
    except KeyboardInterrupt:
        print(f"\ninterrupted; completed cases are journaled — resume with:\n"
              f"  repro fuzz --resume {fuzz_dir} …", file=sys.stderr)
        return 130

    stats = result.stats
    rows = [(key, stats[key]) for key in
            ("cases", "ok", "divergent", "instructions_min",
             "instructions_max", "instructions_mean")]
    rows += [(f"segments[{kind}]", count)
             for kind, count in stats["segment_kinds"].items()]
    print(format_table(("corpus", "value"), rows,
                       title=f"fuzz campaign - seeds {args.seed}.."
                             f"{args.seed + args.n - 1}"))
    if result.seeds_skipped:
        print(f"\ntime budget hit: {len(result.seeds_skipped)} seed(s) unrun "
              f"(resume with: repro fuzz --resume {fuzz_dir} …)")
    for entry in result.divergent:
        kinds = sorted({d["kind"] for d in entry["divergences"]}) or ["?"]
        where = entry.get("path", "(no reproducer written)")
        print(f"\nDIVERGENCE {entry['key']}: {', '.join(kinds)} "
              f"-> {entry['instructions']} instruction reproducer\n  {where}")

    if args.canary:
        # Self-test: the pipeline must detect the planted fault, shrink it
        # to a tiny reproducer, and replay it deterministically.
        problems = []
        if not result.divergent:
            problems.append("planted fault was not detected")
        if not result.reproducer_paths:
            problems.append("no reproducer was written")
        for path in result.reproducer_paths[:1]:
            data = load_reproducer(path)
            if data["instructions"] is None or data["instructions"] > 8:
                problems.append(f"reproducer not minimal: "
                                f"{data['instructions']} instructions (> 8)")
            first = replay_reproducer(path, max_cycles=max_cycles)
            second = replay_reproducer(path, max_cycles=max_cycles)
            if first.ok:
                problems.append("reproducer does not replay the divergence")
            elif ([d.to_dict() for d in first.divergences]
                  != [d.to_dict() for d in second.divergences]):
                problems.append("replay is not deterministic")
        if problems:
            print("\nCANARY FAIL: " + "; ".join(problems), file=sys.stderr)
            return 1
        print("\nCANARY OK: planted fault detected, shrunk to "
              "<= 8 instructions, and replayed deterministically")
        return 0

    if not result.ok:
        print(f"\nFAIL: {len(result.divergent)} divergent case(s)",
              file=sys.stderr)
        return 1
    print(f"\nOK: {stats['ok']}/{stats['cases']} cases clean across "
          f"engines, architectures, and the sanitizer")
    return 0


def cmd_serve(args) -> int:
    from repro.serve.http import serve_forever

    return serve_forever(args.dir, port=args.port, jobs=args.jobs,
                         queue_limit=args.queue_limit,
                         wall_timeout=args.wall_timeout, retries=args.retries)


def cmd_occupancy(args) -> int:
    bench = get(args.benchmark)
    occ = occupancy(bench.kernel, _config(args, ArchMode.BASELINE))
    def fmt(count: int) -> str:
        return "unbounded" if count >= 10**9 else str(count)

    rows = [
        ("CTA slots", fmt(occ.ctas_by_cta_slots)),
        ("warp slots", fmt(occ.ctas_by_warp_slots)),
        ("thread slots", fmt(occ.ctas_by_thread_slots)),
        ("registers", fmt(occ.ctas_by_registers)),
        ("shared memory", fmt(occ.ctas_by_smem)),
    ]
    print(format_table(("constraint", "CTAs/SM it allows"), rows,
                       title=f"{bench.name}: occupancy analysis"))
    print(f"\nbaseline residency: {occ.baseline_ctas} CTAs/SM "
          f"({occ.limiter.value}-limited via {occ.binding_resource}); "
          f"VT headroom {occ.vt_headroom:.2f}x")
    return 0


def cmd_profile(args) -> int:
    from repro.isa.profile import kernel_profile

    bench = get(args.benchmark)
    profile = kernel_profile(bench.kernel)
    print(format_table(("property", "value"), profile.rows(),
                       title=f"{bench.name}: static kernel profile"))
    return 0


def cmd_disasm(args) -> int:
    print(get(args.benchmark).kernel.disassemble())
    return 0


def cmd_lint(args) -> int:
    import json

    from repro.isa.analysis import RULES, lint_kernel

    if args.all and args.benchmark:
        print("error: pass either --all or a benchmark name, not both",
              file=sys.stderr)
        return 2
    if args.benchmark:
        benches = [get(args.benchmark)]
    else:
        benches = list(all_benchmarks())
    reports = [lint_kernel(bench.kernel) for bench in benches]
    if args.format == "json":
        payload = [rep.to_dict(strict=args.strict) for rep in reports]
        print(json.dumps(payload, indent=2))
        return 0 if all(rep.ok(strict=args.strict) for rep in reports) else 1
    print(f"linting {len(benches)} kernel(s): "
          f"{', '.join(bench.name for bench in benches[:8])}"
          f"{', ...' if len(benches) > 8 else ''}\n")

    rows = []
    for rep in reports:
        for f in rep.findings:
            rows.append((f.kernel, f.pc if f.pc is not None else "-",
                         f.rule, f.severity, f.message))
    if rows:
        print(format_table(("kernel", "pc", "rule", "severity", "finding"), rows,
                           title="lint findings"))
    else:
        print("lint findings: none")

    counts = {rule: 0 for rule in RULES}
    for rep in reports:
        for f in rep.findings:
            counts[f.rule] += 1
    summary = [(rule, RULES[rule][0], counts[rule], RULES[rule][1])
               for rule in RULES]
    print()
    print(format_table(("rule", "severity", "findings", "description"), summary,
                       title=f"rule summary ({len(reports)} kernels)"))

    failed = [rep.kernel for rep in reports if not rep.ok(strict=args.strict)]
    gate = "errors or warnings" if args.strict else "errors"
    if failed:
        print(f"\nFAIL ({gate}): {', '.join(failed)}")
        return 1
    print(f"\nOK: no {gate} across {len(reports)} kernel(s)")
    return 0


def cmd_selfcheck(args) -> int:
    import json
    from pathlib import Path

    import repro
    from repro.selfcheck import run_selfcheck

    root = Path(args.root) if args.root else Path(repro.__file__).parent
    if not root.is_dir():
        print(f"error: not a directory: {root}", file=sys.stderr)
        return 2
    baseline = args.baseline
    if baseline is None and args.root is None:
        # Default baseline for the in-repo tree, when present.
        candidate = root.parent.parent / "selfcheck-baseline.json"
        if candidate.is_file():
            baseline = candidate
    try:
        report = run_selfcheck(root, baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(strict=args.strict), indent=2))
    else:
        print(report.render_table(strict=args.strict))
    return 0 if report.ok(strict=args.strict) else 1


def cmd_predict(args) -> int:
    import json

    from repro.isa.analysis.perf import layout_for, predict_kernel

    if args.all and args.benchmark:
        print("error: pass either --all or a benchmark name, not both",
              file=sys.stderr)
        return 2
    benches = ([get(args.benchmark)] if args.benchmark
               else list(all_benchmarks()))
    cfg = scaled_fermi(num_sms=args.sms)

    if args.check:
        # The agreement gate: run the simulator on every predicted cell
        # and require the static oracle to match (X4 is the same code).
        from repro.analysis.experiments import x4_prediction_table

        benches_names = {bench.name for bench in benches}
        report, data = x4_prediction_table(cfg=cfg, scale=args.scale,
                                           keep_going=True, jobs=args.jobs)
        if args.benchmark:
            data["disagreements"] = [
                (name, arch) for name, arch in data["disagreements"]
                if name in benches_names]
            data["failures"] = {key: record
                                for key, record in data["failures"].items()
                                if key[0] in benches_names}
        if args.format == "json":
            cells = {f"{name}/{arch}": cell
                     for (name, arch), cell in data["cells"].items()
                     if name in benches_names}
            print(json.dumps({"cells": cells,
                              "disagreements": data["disagreements"]},
                             indent=2))
        else:
            print(report)
        if data["failures"]:
            failed = ", ".join(f"{n}/{a}" for n, a in data["failures"])
            print(f"\nFAIL (simulation failures): {failed}", file=sys.stderr)
            return 1
        if data["disagreements"]:
            return 1
        if args.format != "json":
            print("\nOK: static oracle agrees with the simulator on every cell")
        return 0

    predictions = []
    for bench in benches:
        layout = layout_for(bench, args.scale)
        predictions.extend(predict_kernel(bench.kernel, cfg, layout=layout))
    if args.format == "json":
        print(json.dumps([p.to_dict() for p in predictions], indent=2))
        return 0
    rows = [(p.kernel, p.arch, p.limiter, p.idle_class, p.vt_tier,
             p.warps, f"{p.busy:.2f}", p.binding)
            for p in predictions]
    print(format_table(
        ("kernel", "arch", "limiter", "idle class", "VT tier", "warps",
         "busy", "binding rule"),
        rows, title="static performance predictions (no simulation)"))
    return 0


def cmd_bound(args) -> int:
    import json

    from repro.isa.analysis.bounds import (IrregularControlFlow,
                                           UnboundedLoop, bench_bounds,
                                           gate_configs)

    if args.all and args.benchmark:
        print("error: pass either --all or a benchmark name, not both",
              file=sys.stderr)
        return 2
    benches = ([get(args.benchmark)] if args.benchmark
               else sorted(all_benchmarks(), key=lambda b: b.name))
    configs = gate_configs(args.sms)

    if args.pairs:
        from repro.isa.analysis.compose import pair_matrix

        arch, cfg = next(iter(configs.items()))
        verdicts = pair_matrix(benches, cfg, mode=args.mode,
                               scale=args.scale, arch=arch)
        if args.format == "json":
            print(json.dumps([v.to_dict() for v in verdicts], indent=2))
            return 0
        rows = [(v.a, v.b, v.verdict, f"{v.ctas_a}+{v.ctas_b}",
                 f"[{v.slowdown_a[0]:.2f}, {v.slowdown_a[1]:.2f}]",
                 f"[{v.slowdown_b[0]:.2f}, {v.slowdown_b[1]:.2f}]",
                 ", ".join(v.reasons) or "-")
                for v in verdicts]
        counts = {}
        for v in verdicts:
            counts[v.verdict] = counts.get(v.verdict, 0) + 1
        print(format_table(
            ("a", "b", "verdict", "ctas/SM", "slowdown a", "slowdown b",
             "reasons"),
            rows, title=f"co-residency verdicts ({arch}, {args.mode})"))
        print("\n" + "  ".join(f"{k}: {v}" for k, v in sorted(counts.items())))
        return 0

    cells = []
    problems = []
    for arch, cfg in configs.items():
        for bench in benches:
            for mode in ("baseline", "vt"):
                try:
                    kb = bench_bounds(bench, cfg, mode=mode,
                                      scale=args.scale, arch=arch)
                except (UnboundedLoop, IrregularControlFlow) as exc:
                    problems.append((arch, bench.name, mode, str(exc)))
                    continue
                record = kb.to_dict()
                if args.check:
                    # Soundness gate: the simulated cycle count must fall
                    # inside the static interval, and no cell may be the
                    # trivial [<=1, >=budget] interval.
                    try:
                        res = run_benchmark(bench, cfg.with_(arch=mode),
                                            scale=args.scale)
                        cycles = res.stats.cycles
                    except Exception as exc:  # sim failure, not a bound bug
                        record["sim_error"] = str(exc)
                        if args.strict:
                            problems.append(
                                (arch, bench.name, mode, f"sim: {exc}"))
                        cells.append(record)
                        continue
                    record["sim_cycles"] = cycles
                    record["sound"] = kb.contains(cycles)
                    record["trivial"] = kb.lo <= 1 or kb.hi >= cfg.max_cycles
                    if not record["sound"]:
                        problems.append(
                            (arch, bench.name, mode,
                             f"sim {cycles} outside [{kb.lo}, {kb.hi}]"))
                    if record["trivial"]:
                        problems.append(
                            (arch, bench.name, mode,
                             f"trivial interval [{kb.lo}, {kb.hi}]"))
                cells.append(record)

    if args.format == "json":
        print(json.dumps({"cells": cells,
                          "problems": [list(p) for p in problems]},
                         indent=2))
        return 1 if problems else 0

    headers = ["kernel", "arch", "mode", "lo", "hi", "tightness"]
    if args.check:
        headers += ["sim", "sound"]
    rows = []
    for record in cells:
        row = [record["kernel"], record["arch"], record["mode"],
               record["lo"], record["hi"], f'{record["tightness"]:.1f}x']
        if args.check:
            row += [record.get("sim_cycles", record.get("sim_error", "-")),
                    {True: "yes", False: "NO"}.get(record.get("sound"), "-")]
        rows.append(tuple(row))
    print(format_table(tuple(headers), rows,
                       title="static total-cycle bounds"
                             + (" (soundness gate)" if args.check else "")))
    if problems:
        print(f"\nFAIL ({len(problems)} problem(s)):", file=sys.stderr)
        for arch, name, mode, why in problems:
            print(f"  {name}/{arch}/{mode}: {why}", file=sys.stderr)
        return 1
    if args.check:
        checked = [r for r in cells if "sim_cycles" in r]
        worst = max(checked, key=lambda r: r["tightness"], default=None)
        print(f"\nOK: {len(checked)} cell(s) sound"
              + (f"; worst tightness {worst['tightness']:.1f}x "
                 f"({worst['kernel']}/{worst['arch']}/{worst['mode']})"
                 if worst else ""))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Virtual Thread (ISCA 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite").set_defaults(fn=cmd_list)

    def add_sim_args(p, with_arch=True):
        p.add_argument("benchmark", help="benchmark name (see `repro list`)")
        if with_arch:
            p.add_argument("--arch", choices=ArchMode.ALL, default=ArchMode.BASELINE)
        p.add_argument("--scale", type=positive_float, default=1.0,
                       help="workload scale factor (> 0)")
        p.add_argument("--sms", type=positive_int, default=2,
                       help="simulated SM count (>= 1)")
        p.add_argument("--scheduler", choices=("lrr", "gto", "two-level"), default=None)
        p.add_argument("--sanitize", action="store_true",
                       help="run the per-cycle invariant sanitizer (slower)")
        p.add_argument("--engine", choices=("serial", "parallel"),
                       default="serial",
                       help="simulation engine: the serial per-cycle loop or "
                            "the sharded epoch engine (identical stats)")
        p.add_argument("--jobs", dest="sim_jobs", type=positive_int, default=1,
                       help="worker shards for --engine parallel "
                            "(1 = in-process shards, >1 = forked workers)")
        p.add_argument("--no-fast-forward", action="store_true",
                       help="force the per-cycle reference engine instead of "
                            "the event-driven fast-forward engine (slower; "
                            "statistics are identical either way)")
        p.add_argument("--max-cycles", type=positive_int, default=None,
                       help="override the hard cycle budget")

    run_p = sub.add_parser("run", help="simulate one benchmark")
    run_p.add_argument("--profile", metavar="PATH", default=None,
                       help="profile the run and write per-component "
                            "wall-time JSON to PATH")
    add_sim_args(run_p)
    run_p.set_defaults(fn=cmd_run)

    cmp_p = sub.add_parser("compare", help="baseline vs VT vs ideal-sched")
    add_sim_args(cmp_p, with_arch=False)
    cmp_p.set_defaults(fn=cmd_compare)

    exp_p = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp_p.add_argument("id", help="experiment id: E1..E12 or X1..X3")
    exp_p.add_argument("--scale", type=positive_float, default=1.0)
    exp_p.add_argument("--strict", action="store_true",
                       help="abort on the first failing run instead of "
                            "rendering FAILED(<reason>) cells")
    exp_p.add_argument("--jobs", type=positive_int, default=None,
                       help="run the experiment's simulations through the "
                            "process-isolated orchestrator with N workers")
    exp_p.add_argument("--store", metavar="DIR", default=None,
                       help="read/write simulation cells through the "
                            "content-addressed result store at DIR")
    exp_p.add_argument("--liveness", action="store_true",
                       help="E11 only: add the liveness-compressed register "
                            "swap-footprint table (default tables unchanged)")
    exp_p.set_defaults(fn=cmd_experiment)

    sweep_p = sub.add_parser(
        "sweep", help="run the benchmark x arch matrix with process "
                      "isolation, checkpointing, and resume")
    sweep_p.add_argument("--benchmark", action="append", dest="benchmarks",
                         metavar="BENCH", default=None,
                         help="restrict to specific benchmarks (repeatable)")
    sweep_p.add_argument("--scale", type=positive_float, default=1.0)
    sweep_p.add_argument("--sms", type=positive_int, default=2)
    sweep_p.add_argument("--jobs", type=positive_int, default=2,
                         help="worker subprocesses (default 2)")
    sweep_p.add_argument("--serial", action="store_true",
                         help="run in-process (no isolation; still journaled)")
    sweep_p.add_argument("--engine", choices=("serial", "parallel"),
                         default="serial",
                         help="simulation engine for every cell "
                              "(identical stats either way)")
    sweep_p.add_argument("--sim-jobs", type=positive_int, default=1,
                         help="worker shards inside each cell for "
                              "--engine parallel (distinct from --jobs)")
    sweep_p.add_argument("--wall-timeout", type=positive_float, default=None,
                         metavar="SECONDS",
                         help="kill any cell exceeding this wall-clock budget")
    sweep_p.add_argument("--retries", type=nonneg_int, default=1,
                         help="extra attempts for retryable failures (default 1)")
    sweep_p.add_argument("--dir", default=None,
                         help="sweep directory for the journal and dumps "
                              "(default: a fresh temp directory)")
    sweep_p.add_argument("--resume", metavar="DIR", default=None,
                         help="resume an interrupted sweep from its directory, "
                              "re-running only unfinished cells")
    sweep_p.add_argument("--max-cycles", type=positive_int, default=None,
                         help="per-run hard cycle budget")
    sweep_p.add_argument("--sanitize", action="store_true",
                         help="run the per-cycle invariant sanitizer (slower)")
    sweep_p.add_argument("--no-fast-forward", action="store_true",
                         help="force the per-cycle reference engine for every "
                              "cell (slower; statistics are identical)")
    sweep_p.add_argument("--store", metavar="DIR", default=None,
                         help="read/write cells through the content-addressed "
                              "result store at DIR (cross-sweep cache)")
    sweep_p.add_argument("--format", choices=("table", "json"), default="table",
                         help="machine-readable JSON summary on stdout "
                              "(progress and the directory line move to stderr)")
    sweep_p.set_defaults(fn=cmd_sweep)

    doc_p = sub.add_parser(
        "doctor", help="sanitizer-on smoke sweep over the suite")
    doc_p.add_argument("--scale", type=positive_float, default=0.25)
    doc_p.add_argument("--sms", type=positive_int, default=1)
    doc_p.add_argument("--benchmark", action="append", dest="benchmarks",
                       metavar="BENCH", default=None,
                       help="restrict to specific benchmarks (repeatable)")
    doc_p.add_argument("--fuzz-dir", metavar="DIR", default=None,
                       help="also list fuzz reproducer dumps under DIR "
                            "(stale or unreadable dumps fail the doctor)")
    doc_p.add_argument("--store", metavar="DIR", default=None,
                       help="audit the result store at DIR first — verify "
                            "every entry's checksum, quarantine corruption, "
                            "collect orphan temp files — then run the smoke "
                            "sweep through it (new corruption fails the "
                            "doctor)")
    doc_p.set_defaults(fn=cmd_doctor)

    fuzz_p = sub.add_parser(
        "fuzz", help="property-based kernel fuzzing: generated kernels "
                     "through every engine/arch against a reference "
                     "executor, with shrinking and replayable reproducers")
    fuzz_p.add_argument("--n", type=positive_int, default=50,
                        help="number of seeded cases (default 50)")
    fuzz_p.add_argument("--seed", type=nonneg_int, default=0,
                        help="first seed; cases use seed..seed+n-1")
    fuzz_p.add_argument("--jobs", type=positive_int, default=2,
                        help="worker subprocesses (default 2)")
    fuzz_p.add_argument("--serial", action="store_true",
                        help="run in-process (no isolation; still journaled)")
    fuzz_p.add_argument("--time-budget", type=positive_float, default=None,
                        metavar="SECONDS",
                        help="stop launching new batches after this much "
                             "wall-clock; remaining seeds stay resumable")
    fuzz_p.add_argument("--wall-timeout", type=positive_float, default=120.0,
                        metavar="SECONDS",
                        help="kill any single case exceeding this wall-clock "
                             "budget (default 120)")
    fuzz_p.add_argument("--dir", default=None,
                        help="campaign directory for the journal and "
                             "reproducers (default: a fresh temp directory)")
    fuzz_p.add_argument("--resume", metavar="DIR", default=None,
                        help="resume an interrupted campaign, re-running "
                             "only seeds without a journal entry")
    fuzz_p.add_argument("--max-cycles", type=positive_int, default=None,
                        help="per-leg hard cycle budget")
    fuzz_p.add_argument("--max-segments", type=positive_int, default=6,
                        help="largest kernels to generate (default 6 segments)")
    fuzz_p.add_argument("--oracle", choices=("record", "check"),
                        default="record",
                        help="'check' turns static-oracle idle disagreement "
                             "into a divergence (default: record only)")
    fuzz_p.add_argument("--canary", action="store_true",
                        help="self-test: plant a known fault on the "
                             "fast-forward leg and verify it is detected, "
                             "shrunk to <= 8 instructions, and replayable")
    fuzz_p.add_argument("--replay", metavar="FILE", default=None,
                        help="replay a reproducer dump; exits 1 if the "
                             "divergence reproduces, 0 if clean, 2 if the "
                             "dump is stale")
    fuzz_p.set_defaults(fn=cmd_fuzz)

    serve_p = sub.add_parser(
        "serve", help="HTTP job service over the content-addressed result "
                      "store: submit/poll/stream simulation jobs with "
                      "dedupe, bounded-queue backpressure, and crash-safe "
                      "caching")
    serve_p.add_argument("--dir", required=True, metavar="DIR",
                         help="result-store root (created if missing); the "
                              "server's only persistent state")
    serve_p.add_argument("--port", type=nonneg_int, default=0,
                         help="listen port on 127.0.0.1 (default 0 = pick an "
                              "ephemeral port and print it)")
    serve_p.add_argument("--jobs", type=nonneg_int, default=2,
                         help="orchestrator worker subprocesses per batch "
                              "(default 2; 0 = in-process serial)")
    serve_p.add_argument("--queue-limit", type=positive_int, default=16,
                         help="bounded-queue capacity; submissions beyond it "
                              "get HTTP 429 (default 16)")
    serve_p.add_argument("--wall-timeout", type=positive_float, default=None,
                         metavar="SECONDS",
                         help="kill any cell exceeding this wall-clock budget")
    serve_p.add_argument("--retries", type=nonneg_int, default=1,
                         help="extra attempts for retryable failures (default 1)")
    serve_p.set_defaults(fn=cmd_serve)

    occ_p = sub.add_parser("occupancy", help="occupancy analysis of a kernel")
    add_sim_args(occ_p, with_arch=False)
    occ_p.set_defaults(fn=cmd_occupancy)

    dis_p = sub.add_parser("disasm", help="disassemble a benchmark kernel")
    dis_p.add_argument("benchmark")
    dis_p.set_defaults(fn=cmd_disasm)

    prof_p = sub.add_parser("profile", help="static kernel profile")
    prof_p.add_argument("benchmark")
    prof_p.set_defaults(fn=cmd_profile)

    lint_p = sub.add_parser(
        "lint", help="static kernel verifier: dataflow, barrier, shared-memory "
                     "and structural checks")
    lint_p.add_argument("benchmark", nargs="?", default=None,
                        help="benchmark to lint (default: every registry kernel)")
    lint_p.add_argument("--all", action="store_true",
                        help="lint every registry kernel (the default when no "
                             "benchmark is named)")
    lint_p.add_argument("--strict", action="store_true",
                        help="fail on warnings as well as errors")
    lint_p.add_argument("--format", choices=("table", "json"), default="table",
                        help="machine-readable JSON instead of tables")
    lint_p.set_defaults(fn=cmd_lint)

    pred_p = sub.add_parser(
        "predict", help="static performance oracle: limiter, idle-cycle "
                        "class, and VT tier without simulating")
    pred_p.add_argument("benchmark", nargs="?", default=None,
                        help="benchmark to predict (default: every registry "
                             "kernel)")
    pred_p.add_argument("--all", action="store_true",
                        help="predict every registry kernel (the default "
                             "when no benchmark is named)")
    pred_p.add_argument("--check", action="store_true",
                        help="agreement gate: simulate each cell and fail "
                             "unless the prediction matches (runs the full "
                             "X4 validation matrix)")
    pred_p.add_argument("--scale", type=positive_float, default=1.0)
    pred_p.add_argument("--sms", type=positive_int, default=2)
    pred_p.add_argument("--jobs", type=positive_int, default=None,
                        help="with --check: run the simulations through the "
                             "process-isolated orchestrator with N workers")
    pred_p.add_argument("--format", choices=("table", "json"), default="table",
                        help="machine-readable JSON instead of tables")
    pred_p.set_defaults(fn=cmd_predict)

    bound_p = sub.add_parser(
        "bound", help="sound static [lo, hi] total-cycle bounds per "
                      "kernel x arch x mode, plus co-residency pair "
                      "verdicts (--pairs)")
    bound_p.add_argument("benchmark", nargs="?", default=None,
                         help="benchmark to bound (default: every registry "
                              "kernel)")
    bound_p.add_argument("--all", action="store_true",
                         help="bound every registry kernel (the default "
                              "when no benchmark is named)")
    bound_p.add_argument("--check", action="store_true",
                         help="soundness gate: simulate each cell and fail "
                              "unless its cycle count falls inside the "
                              "static interval (and no interval is trivial)")
    bound_p.add_argument("--pairs", action="store_true",
                         help="co-residency composer: admit/degrade/deny "
                              "verdicts with slowdown bounds for every "
                              "kernel pair")
    bound_p.add_argument("--mode", choices=("baseline", "vt"),
                         default="baseline",
                         help="scheduling mode for --pairs (bounds tables "
                              "always cover both modes)")
    bound_p.add_argument("--strict", action="store_true",
                         help="with --check: also fail on simulation "
                              "errors (otherwise reported and skipped)")
    bound_p.add_argument("--scale", type=positive_float, default=1.0)
    bound_p.add_argument("--sms", type=positive_int, default=None,
                         help="restrict to one scaled-Fermi config with N "
                              "SMs (default: the three gate arches)")
    bound_p.add_argument("--format", choices=("table", "json"),
                         default="table",
                         help="machine-readable JSON instead of tables")
    bound_p.set_defaults(fn=cmd_bound)

    self_p = sub.add_parser(
        "selfcheck", help="static analyzer over the simulator's own "
                          "sources: shard isolation, determinism, and "
                          "serialization schema integrity")
    self_p.add_argument("root", nargs="?", default=None,
                        help="source tree to analyze (default: the "
                             "installed repro package)")
    self_p.add_argument("--strict", action="store_true",
                        help="fail on warnings as well as errors")
    self_p.add_argument("--baseline", default=None,
                        help="justified-findings baseline JSON (default: "
                             "selfcheck-baseline.json beside src/ when "
                             "analyzing the installed package)")
    self_p.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="machine-readable JSON instead of tables")
    self_p.set_defaults(fn=cmd_selfcheck)

    return parser


def _write_dump(dump: str | None) -> str | None:
    """Persist a deadlock-forensics dump; returns its path (None if empty)."""
    if not dump:
        return None
    with tempfile.NamedTemporaryFile(
            "w", prefix="repro-dump-", suffix=".txt", delete=False) as handle:
        handle.write(dump + "\n")
        return handle.name


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 1
    except SimulationTimeout as exc:
        kind = "deadlock" if isinstance(exc, ProgressDeadlock) else "timeout"
        print(f"simulation {kind}: {exc}", file=sys.stderr)
        path = _write_dump(exc.dump)
        if path:
            print(f"diagnostic dump written to {path}", file=sys.stderr)
        return 1
    except FileExistsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
