"""Paper-artifact experiments E1..E12.

One function per table/figure of the evaluation (see DESIGN.md for the
mapping).  Each returns ``(report, data)``: an aligned-text report that
mirrors the paper's rows/series, plus the raw numbers so tests and the
benchmark harness can assert the reproduction's shape claims.

All experiments default to the 2-SM scaled Fermi configuration; ``scale``
shrinks or grows every workload's grid for quick runs.

Every experiment that simulates enumerates its runs up front and collects
them through :func:`_run_cells`, so the same experiment can execute
serially in-process (the default) or through the subprocess sweep
orchestrator (``jobs``/``sweep_dir``; see
:mod:`repro.analysis.orchestrator`) with per-cell isolation, wall-clock
deadlines, retries, and journal/resume.
"""

from __future__ import annotations

from repro.analysis.geomean import geomean, speedup_summary
from repro.analysis.runner import run_benchmark, run_matrix
from repro.analysis.tables import ascii_bars, format_table
from repro.core.occupancy import occupancy
from repro.core.overhead import vt_overhead
from repro.kernels.registry import all_benchmarks, get
from repro.sim.config import ArchMode, GPUConfig, scaled_fermi

#: Benchmarks used for parameter sweeps: the scheduling-limited,
#: memory-sensitive subset where VT is active (sweeping the full suite
#: would mostly re-measure flat lines).
SWEEP_SUBSET = ("stride", "streamcluster", "hotspot", "pathfinder", "kmeans")

ARCHS = (ArchMode.BASELINE, ArchMode.VT, ArchMode.IDEAL_SCHED)


def default_config(**overrides) -> GPUConfig:
    return scaled_fermi(num_sms=2, **overrides)


def _run_cells(runs, *, jobs=None, sweep_dir=None, resume=False,
               wall_timeout=None, retries=1, store=None):
    """Collect one experiment's simulation runs.

    ``runs`` maps an arbitrary hashable key to ``(bench, cfg, scale)``.
    Serially (``jobs``/``sweep_dir``/``store`` unset) each run executes
    in-process via :func:`run_benchmark`, raising on the first failure —
    the historical strict behaviour.  With any of them set the whole set
    goes through the subprocess orchestrator: isolated workers, wall-clock
    deadlines, per-status retries, journal/resume, and — with ``store`` —
    the global content-addressed result cache, so re-generating a paper
    artifact re-reads previously simulated cells instead of re-running
    them.  A cell that still fails terminally raises when the experiment
    reads its ``.cycles``, so a half-broken sweep cannot silently produce
    a table built on missing numbers.
    """
    if jobs is None and sweep_dir is None and store is None:
        return {key: run_benchmark(bench, cfg, scale)
                for key, (bench, cfg, scale) in runs.items()}
    from repro.analysis.orchestrator import SweepCell, run_sweep

    cells = [SweepCell(bench.name, cfg, scale, key=key)
             for key, (bench, cfg, scale) in runs.items()]
    result = run_sweep(cells, jobs=jobs or 1, wall_timeout=wall_timeout,
                       retries=retries, journal_dir=sweep_dir, resume=resume,
                       store=store)
    return result.records


def _cycles_cell(record) -> str | int:
    """A cycles table cell; ``NNN*`` marks a run that needed a retry."""
    if not record.ok:
        return record.failure
    return f"{record.cycles}*" if record.retried else record.cycles


# ---------------------------------------------------------------------------
# E1 — methodology table: simulated configuration
# ---------------------------------------------------------------------------

def e1_config_table(cfg: GPUConfig | None = None):
    """Table 1: the simulated GPU configuration."""
    cfg = cfg or default_config()
    rows = [
        ("SMs simulated", f"{cfg.num_sms} (per-SM parameters are GTX480-class)"),
        ("warp size", cfg.warp_size),
        ("warp slots / SM (scheduling limit)", cfg.max_warps_per_sm),
        ("CTA slots / SM (scheduling limit)", cfg.max_ctas_per_sm),
        ("thread slots / SM", cfg.max_threads_per_sm),
        ("register file / SM (capacity limit)", f"{cfg.registers_per_sm} regs (128 KiB)"),
        ("shared memory / SM (capacity limit)", f"{cfg.smem_per_sm // 1024} KiB"),
        ("warp schedulers / SM", f"{cfg.num_warp_schedulers} x {cfg.warp_scheduler.upper()}"),
        ("L1D / SM", f"{cfg.l1_size // 1024} KiB, {cfg.l1_assoc}-way, {cfg.l1_mshrs} MSHRs"),
        ("shared L2", f"{cfg.l2_size // 1024} KiB, {cfg.l2_assoc}-way"),
        ("DRAM", f"{cfg.dram_channels} channels, {cfg.dram_latency}-cycle latency"),
        ("VT resident-CTA cap", f"{cfg.vt_max_resident_multiplier:g}x active limit"),
        ("VT swap cost", f"save {cfg.vt_swap_out_base}+{cfg.vt_swap_out_per_warp}/warp, "
                         f"restore {cfg.vt_swap_in_base}+{cfg.vt_swap_in_per_warp}/warp cycles"),
    ]
    report = format_table(("parameter", "value"), rows, title="E1 / Table 1 - simulated configuration")
    return report, {"config": cfg}


# ---------------------------------------------------------------------------
# E2 — benchmark table with limiter classification
# ---------------------------------------------------------------------------

def e2_benchmark_table(cfg: GPUConfig | None = None):
    """Table 2: the suite, per-kernel resources, and the limiter class.

    The limiter column comes from :func:`repro.core.occupancy.limiter_summary`
    — the same single source of truth the static oracle and ``repro list``
    read — never re-derived from raw footprints here.
    """
    cfg = cfg or default_config()
    from repro.core.occupancy import limiter_summary

    rows = []
    data = {}
    for bench in all_benchmarks():
        summary = limiter_summary(bench.kernel, cfg)
        rows.append((
            bench.name,
            bench.suite,
            bench.category,
            "x".join(str(d) for d in bench.kernel.cta_dim if d > 1) or "1",
            bench.kernel.regs_per_thread,
            bench.kernel.smem_bytes,
            summary["baseline_ctas"],
            summary["capacity_ctas"],
            summary["limiter"],
        ))
        data[bench.name] = summary["occupancy"]
    report = format_table(
        ("benchmark", "models", "class", "cta", "regs/t", "smem B",
         "CTAs(base)", "CTAs(cap)", "limiter"),
        rows,
        title="E2 / Table 2 - benchmark suite and limiter classification",
    )
    return report, data


# ---------------------------------------------------------------------------
# E3 — motivation: CTA residency, scheduling vs capacity limit
# ---------------------------------------------------------------------------

def e3_cta_residency(cfg: GPUConfig | None = None):
    """Motivation figure: CTAs/SM under each limit family per benchmark."""
    cfg = cfg or default_config()
    rows = []
    headroom = {}
    for bench in all_benchmarks():
        occ = occupancy(bench.kernel, cfg)
        rows.append((bench.name, occ.scheduling_limit_ctas, occ.capacity_limit_ctas,
                     f"{occ.vt_headroom:.2f}x", occ.binding_resource))
        headroom[bench.name] = occ.vt_headroom
    report = format_table(
        ("benchmark", "CTAs @ sched limit", "CTAs @ capacity limit", "VT headroom", "binding resource"),
        rows,
        title="E3 - CTA residency: scheduling limit leaves capacity idle",
    )
    return report, headroom


# ---------------------------------------------------------------------------
# E4 — motivation: idle-cycle breakdown on the baseline
# ---------------------------------------------------------------------------

def e4_idle_cycles(cfg: GPUConfig | None = None, scale: float = 1.0,
                   jobs: int | None = None, sweep_dir=None, store=None):
    """Motivation figure: fraction of SM cycles with zero issue, by cause."""
    cfg = (cfg or default_config()).with_(arch=ArchMode.BASELINE)
    records = _run_cells({b.name: (b, cfg, scale) for b in all_benchmarks()},
                         jobs=jobs, sweep_dir=sweep_dir, store=store)
    rows = []
    data = {}
    for bench in all_benchmarks():
        record = records[bench.name]
        breakdown = record.stats.idle_breakdown()
        rows.append((
            bench.name,
            f"{breakdown['busy']:.1%}",
            f"{breakdown['mem']:.1%}",
            f"{breakdown['alu']:.1%}",
            f"{breakdown['barrier']:.1%}",
            f"{breakdown['struct']:.1%}",
            f"{breakdown['empty']:.1%}",
        ))
        data[bench.name] = breakdown
    report = format_table(
        ("benchmark", "busy", "idle:mem", "idle:alu", "idle:barrier", "idle:struct", "idle:other"),
        rows,
        title="E4 - baseline idle-cycle breakdown (why the SM starves)",
    )
    return report, data


# ---------------------------------------------------------------------------
# E5 — headline: speedups of VT and ideal-sched over baseline
# ---------------------------------------------------------------------------

def e5_speedup(cfg: GPUConfig | None = None, scale: float = 1.0,
               benches=None, keep_going: bool = True,
               jobs: int | None = None, sweep_dir=None, store=None):
    """The headline figure: per-benchmark IPC normalized to baseline.

    With ``keep_going`` (default) a failing (bench, arch) cell renders as
    ``FAILED(<reason>)`` and is excluded from the speedup statistics, so
    the rest of the table survives one broken run; ``keep_going=False``
    restores the historical first-failure-raises behaviour.  A cycles cell
    rendered as ``NNN*`` completed only after a retry.  ``jobs`` /
    ``sweep_dir`` route the matrix through the subprocess orchestrator.
    """
    base_cfg = cfg or default_config()
    benches = list(benches) if benches is not None else all_benchmarks()
    records = run_matrix(benches, ARCHS, base_cfg, scale, keep_going=keep_going,
                         parallel=jobs, journal_dir=sweep_dir, store=store)
    rows = []
    vt_speedups = {}
    ideal_speedups = {}
    failures = {}
    for bench in benches:
        by_arch = {arch: records[(bench.name, arch)] for arch in ARCHS}
        if not all(record.ok for record in by_arch.values()):
            failures[bench.name] = {
                arch: record for arch, record in by_arch.items() if not record.ok
            }
            rows.append((
                bench.name,
                *(_cycles_cell(record) for record in by_arch.values()),
                "-", "-", "-",
            ))
            continue
        base = by_arch[ArchMode.BASELINE].cycles
        vt = by_arch[ArchMode.VT].cycles
        ideal = by_arch[ArchMode.IDEAL_SCHED].cycles
        vt_speedups[bench.name] = base / vt
        ideal_speedups[bench.name] = base / ideal
        rows.append((bench.name,
                     *(_cycles_cell(by_arch[a]) for a in ARCHS),
                     f"x{base / vt:.3f}", f"x{base / ideal:.3f}",
                     by_arch[ArchMode.VT].stats.total_swaps))
    table = format_table(
        ("benchmark", "base cyc", "VT cyc", "ideal cyc", "VT speedup", "ideal speedup", "swaps"),
        rows,
        title="E5 - speedup over baseline (paper: VT avg +23.9%)",
    )
    parts = [table]
    if any(record.retried for record in records.values()):
        parts.append("(* = completed only after a retry)")
    if failures:
        parts.append("")
        parts.append("failed cells (excluded from the statistics):")
        for name, by_arch in failures.items():
            for arch, record in by_arch.items():
                parts.append(f"  {name}/{arch}: {record.error}")
    if vt_speedups:
        bars = ascii_bars(sorted(vt_speedups.items(), key=lambda kv: -kv[1]),
                          reference=1.0, unit="x")
        gm_vt = geomean(vt_speedups.values())
        gm_ideal = geomean(ideal_speedups.values())
        parts.extend([
            "",
            "VT speedup (normalized IPC, '|' = baseline):",
            bars,
            "",
            f"VT:    {speedup_summary(vt_speedups)}",
            f"ideal: {speedup_summary(ideal_speedups)}",
        ])
    else:
        gm_vt = gm_ideal = float("nan")
        parts.extend(["", "no cell completed; no speedup statistics"])
    data = {
        "vt": vt_speedups,
        "ideal": ideal_speedups,
        "geomean_vt": gm_vt,
        "geomean_ideal": gm_ideal,
        "records": records,
        "failures": failures,
    }
    return "\n".join(parts), data


# ---------------------------------------------------------------------------
# E6 — TLP: schedulable warps over time, baseline vs VT
# ---------------------------------------------------------------------------

def e6_tlp(cfg: GPUConfig | None = None, scale: float = 1.0,
           jobs: int | None = None, sweep_dir=None, store=None):
    """How much thread-level parallelism VT exposes to the SM."""
    base_cfg = cfg or default_config()
    runs = {}
    for bench in all_benchmarks():
        runs[(bench.name, ArchMode.BASELINE)] = (
            bench, base_cfg.with_(arch=ArchMode.BASELINE), scale)
        runs[(bench.name, ArchMode.VT)] = (
            bench, base_cfg.with_(arch=ArchMode.VT), scale)
    records = _run_cells(runs, jobs=jobs, sweep_dir=sweep_dir, store=store)
    rows = []
    data = {}
    for bench in all_benchmarks():
        base = records[(bench.name, ArchMode.BASELINE)]
        vt = records[(bench.name, ArchMode.VT)]
        rows.append((
            bench.name,
            f"{base.stats.avg_resident_warps:.1f}",
            f"{vt.stats.avg_resident_warps:.1f}",
            f"{base.stats.avg_resident_ctas:.1f}",
            f"{vt.stats.avg_resident_ctas:.1f} ({vt.stats.avg_active_ctas:.1f} active)",
        ))
        data[bench.name] = {
            "base_warps": base.stats.avg_resident_warps,
            "vt_warps": vt.stats.avg_resident_warps,
            "base_ctas": base.stats.avg_resident_ctas,
            "vt_ctas": vt.stats.avg_resident_ctas,
            "vt_active_ctas": vt.stats.avg_active_ctas,
        }
    report = format_table(
        ("benchmark", "warps/SM base", "warps/SM VT", "CTAs base", "CTAs VT"),
        rows,
        title="E6 - resident thread-level parallelism, baseline vs VT",
    )
    return report, data


# ---------------------------------------------------------------------------
# E7 — sensitivity: context-switch latency
# ---------------------------------------------------------------------------

SWAP_LATENCY_POINTS = ((0, 0), (2, 1), (8, 4), (32, 16), (128, 64))


def e7_swap_latency(cfg: GPUConfig | None = None, scale: float = 1.0,
                    points=SWAP_LATENCY_POINTS, subset=SWEEP_SUBSET,
                    jobs: int | None = None, sweep_dir=None, store=None):
    """VT speedup as the swap save/restore cost scales.

    The paper's claim: because only scheduling state moves, swaps cost a
    handful of cycles and performance is robust until costs grow by an
    order of magnitude.
    """
    base_cfg = cfg or default_config()
    benches = [get(name) for name in subset]
    runs = {("base", b.name): (b, base_cfg.with_(arch=ArchMode.BASELINE), scale)
            for b in benches}
    for base_cost, per_warp in points:
        vt_cfg = base_cfg.with_(
            arch=ArchMode.VT,
            vt_swap_out_base=base_cost, vt_swap_out_per_warp=per_warp,
            vt_swap_in_base=base_cost, vt_swap_in_per_warp=per_warp,
        )
        for b in benches:
            runs[((base_cost, per_warp), b.name)] = (b, vt_cfg, scale)
    records = _run_cells(runs, jobs=jobs, sweep_dir=sweep_dir, store=store)
    baselines = {b.name: records[("base", b.name)].cycles for b in benches}
    rows = []
    data = {}
    for base_cost, per_warp in points:
        speedups = {
            b.name: baselines[b.name] / records[((base_cost, per_warp), b.name)].cycles
            for b in benches
        }
        label = f"save/restore {base_cost}+{per_warp}/warp"
        gm = geomean(speedups.values())
        data[(base_cost, per_warp)] = {"speedups": speedups, "geomean": gm}
        rows.append((label, *(f"x{speedups[b.name]:.3f}" for b in benches), f"x{gm:.3f}"))
    report = format_table(
        ("swap cost", *subset, "geomean"),
        rows,
        title="E7 - VT speedup vs context-switch latency",
    )
    return report, data


# ---------------------------------------------------------------------------
# E8 — sensitivity: virtual-CTA degree (resident multiplier)
# ---------------------------------------------------------------------------

def e8_vcta_degree(cfg: GPUConfig | None = None, scale: float = 1.0,
                   multipliers=(1.0, 1.5, 2.0, 3.0, 4.0), subset=SWEEP_SUBSET,
                   jobs: int | None = None, sweep_dir=None, store=None):
    """VT speedup as the resident-CTA provisioning grows (1x = no virtual
    CTAs, so VT must degenerate to baseline behaviour)."""
    base_cfg = cfg or default_config()
    benches = [get(name) for name in subset]
    runs = {("base", b.name): (b, base_cfg.with_(arch=ArchMode.BASELINE), scale)
            for b in benches}
    for mult in multipliers:
        vt_cfg = base_cfg.with_(arch=ArchMode.VT, vt_max_resident_multiplier=mult)
        for b in benches:
            runs[(mult, b.name)] = (b, vt_cfg, scale)
    records = _run_cells(runs, jobs=jobs, sweep_dir=sweep_dir, store=store)
    baselines = {b.name: records[("base", b.name)].cycles for b in benches}
    rows = []
    data = {}
    for mult in multipliers:
        speedups = {
            b.name: baselines[b.name] / records[(mult, b.name)].cycles
            for b in benches
        }
        gm = geomean(speedups.values())
        data[mult] = {"speedups": speedups, "geomean": gm}
        rows.append((f"{mult:g}x", *(f"x{speedups[b.name]:.3f}" for b in benches), f"x{gm:.3f}"))
    report = format_table(
        ("resident cap", *subset, "geomean"),
        rows,
        title="E8 - VT speedup vs virtual-CTA provisioning",
    )
    return report, data


# ---------------------------------------------------------------------------
# E9 — interaction with the warp scheduler
# ---------------------------------------------------------------------------

def e9_schedulers(cfg: GPUConfig | None = None, scale: float = 1.0,
                  schedulers=("lrr", "gto", "two-level"), subset=SWEEP_SUBSET,
                  jobs: int | None = None, sweep_dir=None, store=None):
    """VT's gain under different warp-scheduling policies."""
    base_cfg = cfg or default_config()
    benches = [get(name) for name in subset]
    runs = {}
    for policy in schedulers:
        pol_cfg = base_cfg.with_(warp_scheduler=policy)
        for bench in benches:
            for arch in (ArchMode.BASELINE, ArchMode.VT):
                runs[(policy, bench.name, arch)] = (
                    bench, pol_cfg.with_(arch=arch), scale)
    records = _run_cells(runs, jobs=jobs, sweep_dir=sweep_dir, store=store)
    rows = []
    data = {}
    for policy in schedulers:
        speedups = {}
        for bench in benches:
            base = records[(policy, bench.name, ArchMode.BASELINE)].cycles
            vt = records[(policy, bench.name, ArchMode.VT)].cycles
            speedups[bench.name] = base / vt
        gm = geomean(speedups.values())
        data[policy] = {"speedups": speedups, "geomean": gm}
        rows.append((policy, *(f"x{speedups[b.name]:.3f}" for b in benches), f"x{gm:.3f}"))
    report = format_table(
        ("warp scheduler", *subset, "geomean VT gain"),
        rows,
        title="E9 - VT gain under different warp schedulers",
    )
    return report, data


# ---------------------------------------------------------------------------
# E10 — sensitivity: memory latency
# ---------------------------------------------------------------------------

def e10_mem_latency(cfg: GPUConfig | None = None, scale: float = 1.0,
                    latencies=(200, 400, 600, 800), subset=SWEEP_SUBSET,
                    jobs: int | None = None, sweep_dir=None, store=None):
    """VT's gain should grow with memory latency (more to hide)."""
    base_cfg = cfg or default_config()
    benches = [get(name) for name in subset]
    runs = {}
    for latency in latencies:
        lat_cfg = base_cfg.with_(dram_latency=latency)
        for bench in benches:
            for arch in (ArchMode.BASELINE, ArchMode.VT):
                runs[(latency, bench.name, arch)] = (
                    bench, lat_cfg.with_(arch=arch), scale)
    records = _run_cells(runs, jobs=jobs, sweep_dir=sweep_dir, store=store)
    rows = []
    data = {}
    for latency in latencies:
        speedups = {}
        for bench in benches:
            base = records[(latency, bench.name, ArchMode.BASELINE)].cycles
            vt = records[(latency, bench.name, ArchMode.VT)].cycles
            speedups[bench.name] = base / vt
        gm = geomean(speedups.values())
        data[latency] = {"speedups": speedups, "geomean": gm}
        rows.append((f"{latency} cyc", *(f"x{speedups[b.name]:.3f}" for b in benches), f"x{gm:.3f}"))
    report = format_table(
        ("DRAM latency", *subset, "geomean VT gain"),
        rows,
        title="E10 - VT gain vs DRAM latency",
    )
    return report, data


# ---------------------------------------------------------------------------
# E11 — hardware overhead
# ---------------------------------------------------------------------------

def e11_overhead(cfg: GPUConfig | None = None, liveness: bool = False):
    """Overhead table: VT's backup SRAM next to the memory it virtualizes.

    With ``liveness=True`` a second table contrasts VT's scheduling-only
    switch with a hypothetical register-spilling switch, priced both at
    the declared footprint and at the liveness-compressed footprint (live
    registers at barriers / post-global-load swap points, from the static
    analysis package).  The default table is byte-identical either way.
    """
    cfg = cfg or default_config()
    report_obj = vt_overhead(cfg)
    report = format_table(("item", "value"), report_obj.rows(),
                          title="E11 - Virtual Thread hardware overhead per SM")
    data = {"overhead": report_obj}
    if liveness:
        from repro.core.overhead import liveness_swap_footprint

        footprints = [liveness_swap_footprint(b.kernel) for b in all_benchmarks()]
        rows = [(fp.kernel_name, fp.declared_regs, fp.live_regs,
                 fp.declared_bytes, fp.live_bytes, f"{fp.compression:.0%}")
                for fp in footprints]
        report += "\n\n" + format_table(
            ("kernel", "declared regs", "live@swap regs",
             "spill B/CTA (declared)", "spill B/CTA (live)", "saved"),
            rows,
            title="E11b - liveness-compressed register spill per context "
                  "switch (hypothetical; VT itself moves scheduling state only)")
        data["footprints"] = {fp.kernel_name: fp for fp in footprints}
    return report, data


# ---------------------------------------------------------------------------
# E12 — ablation: swap trigger and selection policies
# ---------------------------------------------------------------------------

def e12_ablation(cfg: GPUConfig | None = None, scale: float = 1.0, subset=SWEEP_SUBSET,
                 jobs: int | None = None, sweep_dir=None, store=None):
    """Design-choice ablation for the swap trigger and victim selection."""
    base_cfg = cfg or default_config()
    benches = [get(name) for name in subset]
    variants = [
        ("all-stalled / oldest-ready (paper)", dict(vt_trigger_policy="all-stalled",
                                                    vt_select_policy="oldest-ready")),
        ("all-stalled / most-ready", dict(vt_trigger_policy="all-stalled",
                                          vt_select_policy="most-ready")),
        ("majority-stalled / oldest-ready", dict(vt_trigger_policy="majority-stalled",
                                                 vt_select_policy="oldest-ready")),
        ("timeout(16) / oldest-ready", dict(vt_trigger_policy="timeout",
                                            vt_select_policy="oldest-ready")),
    ]
    runs = {("base", b.name): (b, base_cfg.with_(arch=ArchMode.BASELINE), scale)
            for b in benches}
    for label, overrides in variants:
        vt_cfg = base_cfg.with_(arch=ArchMode.VT, **overrides)
        for b in benches:
            runs[(label, b.name)] = (b, vt_cfg, scale)
    records = _run_cells(runs, jobs=jobs, sweep_dir=sweep_dir, store=store)
    baselines = {b.name: records[("base", b.name)].cycles for b in benches}
    rows = []
    data = {}
    for label, _overrides in variants:
        speedups = {}
        swaps = 0
        for bench in benches:
            record = records[(label, bench.name)]
            speedups[bench.name] = baselines[bench.name] / record.cycles
            swaps += record.stats.total_swaps
        gm = geomean(speedups.values())
        data[label] = {"speedups": speedups, "geomean": gm, "swaps": swaps}
        rows.append((label, *(f"x{speedups[b.name]:.3f}" for b in benches), f"x{gm:.3f}", swaps))
    report = format_table(
        ("policy variant", *subset, "geomean", "total swaps"),
        rows,
        title="E12 - swap-policy ablation",
    )
    return report, data


# ---------------------------------------------------------------------------
# X1 — extension (beyond the paper): oversubscription cache contention
# ---------------------------------------------------------------------------

def x1_contention(cfg: GPUConfig | None = None, scale: float = 1.0, bench_name: str = "spmv",
                  jobs: int | None = None, sweep_dir=None, store=None):
    """Diagnose the one VT regression in E5 and evaluate a mitigation.

    spmv loses under VT because rotating the active set through more CTAs
    spreads the L1 working set: lines fetched before a swap-out are evicted
    before the CTA returns, inflating DRAM traffic.  The table shows the
    diagnosis (DRAM requests and hit rates across variants) and one
    mitigation from this reproduction: the LIFO ``most-recent`` selection
    policy, which keeps the recently-touched CTAs hot.
    """
    base_cfg = cfg or default_config()
    bench = get(bench_name)
    variants = [
        ("baseline", base_cfg.with_(arch=ArchMode.BASELINE)),
        ("vt / oldest-ready (paper)", base_cfg.with_(arch=ArchMode.VT)),
        ("vt / most-recent (LIFO ext.)", base_cfg.with_(arch=ArchMode.VT,
                                                        vt_select_policy="most-recent")),
        ("ideal-sched", base_cfg.with_(arch=ArchMode.IDEAL_SCHED)),
        ("baseline, 48K L1", base_cfg.with_(arch=ArchMode.BASELINE, l1_size=49152)),
        ("vt, 48K L1", base_cfg.with_(arch=ArchMode.VT, l1_size=49152)),
    ]
    records = _run_cells({label: (bench, variant_cfg, scale)
                          for label, variant_cfg in variants},
                         jobs=jobs, sweep_dir=sweep_dir, store=store)
    rows = []
    data = {}
    base_cycles = None
    for label, _variant_cfg in variants:
        record = records[label]
        stats = record.stats
        if base_cycles is None:
            base_cycles = stats.cycles
        rows.append((label, stats.cycles, f"x{base_cycles / stats.cycles:.3f}",
                     f"{stats.l1_hit_rate:.0%}", f"{stats.l2_hit_rate:.0%}",
                     stats.dram_requests, stats.total_swaps))
        data[label] = {
            "cycles": stats.cycles,
            "l1_hit": stats.l1_hit_rate,
            "dram": stats.dram_requests,
        }
    report = format_table(
        ("variant", "cycles", "vs 16K baseline", "L1 hit", "L2 hit", "DRAM reqs", "swaps"),
        rows,
        title=f"X1 (extension) - oversubscription cache contention on {bench_name}",
    )
    return report, data


# ---------------------------------------------------------------------------
# X2 — extension (beyond the paper): does VT generalize to a Kepler-class SM?
# ---------------------------------------------------------------------------

def x2_kepler(cfg: GPUConfig | None = None, scale: float = 2.0, subset=SWEEP_SUBSET,
              jobs: int | None = None, sweep_dir=None, store=None):
    """VT gain on a Kepler-class SM (64 warps / 16 CTAs / 2x register file).

    Kepler relaxes Fermi's scheduling limits but also doubles capacity, so
    small-CTA kernels remain scheduling-limited and VT's argument carries
    forward; the absolute gain shrinks because the baseline already holds
    twice the CTAs.
    """
    from repro.sim.config import scaled_kepler

    # Kepler holds 2x the CTAs per SM, so grids must be proportionally
    # larger before the scheduling limit binds; hence the 2x default scale.
    kepler = (cfg or scaled_kepler(num_sms=2))
    benches = [get(name) for name in subset]
    runs = {}
    for bench in benches:
        for arch in (ArchMode.BASELINE, ArchMode.VT):
            runs[(bench.name, arch)] = (bench, kepler.with_(arch=arch), scale)
    records = _run_cells(runs, jobs=jobs, sweep_dir=sweep_dir, store=store)
    from repro.core.occupancy import limiter_summary

    rows = []
    data = {}
    for bench in benches:
        summary = limiter_summary(bench.kernel, kepler)
        base = records[(bench.name, ArchMode.BASELINE)]
        vt = records[(bench.name, ArchMode.VT)]
        speedup = base.cycles / vt.cycles
        data[bench.name] = {
            "speedup": speedup,
            "headroom": summary["headroom"],
            "limiter": summary["limiter"],
        }
        rows.append((bench.name, summary["limiter"], f"{summary['headroom']:.2f}x",
                     base.cycles, vt.cycles, f"x{speedup:.3f}"))
    gm = geomean(d["speedup"] for d in data.values())
    data["geomean"] = gm
    report = format_table(
        ("benchmark", "limiter", "VT headroom", "base cyc", "VT cyc", "VT speedup"),
        rows,
        title=f"X2 (extension) - VT on a Kepler-class SM (geomean x{gm:.3f})",
    )
    return report, data


# ---------------------------------------------------------------------------
# X3 — methodology validation: scaled 2-SM chip vs the full 15-SM GTX480
# ---------------------------------------------------------------------------

def x3_full_chip(cfg: GPUConfig | None = None, scale: float = 1.0,
                 subset=("stride", "streamcluster", "kmeans"),
                 jobs: int | None = None, sweep_dir=None, store=None):
    """VT speedups on the full 15-SM chip vs the scaled 2-SM default.

    The harness runs everything on a scaled-down chip for tractability;
    this experiment validates that choice: at matched per-SM CTA pressure
    (grid scaled by 15/2), the full GTX480-class configuration reproduces
    the scaled configuration's speedups within a few percent.
    """
    small = cfg or default_config()
    from repro.sim.config import fermi_config

    full = fermi_config()
    ratio = full.num_sms / small.num_sms
    chips = (("scaled", small, scale), ("full", full, scale * ratio))
    runs = {}
    for name in subset:
        bench = get(name)
        for label, chip_cfg, chip_scale in chips:
            for arch in (ArchMode.BASELINE, ArchMode.VT):
                runs[(name, label, arch)] = (
                    bench, chip_cfg.with_(arch=arch), chip_scale)
    records = _run_cells(runs, jobs=jobs, sweep_dir=sweep_dir, store=store)
    rows = []
    data = {}
    for name in subset:
        speedups = {}
        for label, _chip_cfg, _chip_scale in chips:
            base = records[(name, label, ArchMode.BASELINE)]
            vt = records[(name, label, ArchMode.VT)]
            speedups[label] = base.cycles / vt.cycles
        gap = abs(speedups["full"] - speedups["scaled"]) / speedups["scaled"]
        data[name] = {**speedups, "gap": gap}
        rows.append((name, f"x{speedups['scaled']:.3f}", f"x{speedups['full']:.3f}",
                     f"{gap:.1%}"))
    report = format_table(
        ("benchmark", f"VT speedup ({small.num_sms} SMs)", f"VT speedup ({full.num_sms} SMs)", "gap"),
        rows,
        title="X3 (methodology) - scaled chip vs full GTX480-class chip",
    )
    return report, data


# ---------------------------------------------------------------------------
# X4 — static oracle vs simulator: the prediction agreement gate
# ---------------------------------------------------------------------------

def x4_prediction_table(cfg: GPUConfig | None = None, scale: float = 1.0,
                        keep_going: bool = True, jobs: int | None = None,
                        sweep_dir=None, store=None):
    """Predicted vs measured limiter / idle class / VT tier, all kernels.

    The model-vs-measurement discipline behind ``repro predict --check``:
    for every (kernel, arch) cell the static oracle's limiter class must
    match :mod:`repro.core.occupancy` and its idle-cycle class must match
    the simulator's dominant idle kind (``AGREEMENT_TIE`` tolerates
    genuine near-ties between the measured fractions).  The VT tier
    columns are reported for inspection but not gated — tier cut points
    quantize a continuous speedup.
    """
    cfg = cfg or default_config()
    from repro.core.occupancy import limiter_summary
    from repro.isa.analysis.perf import (idle_agreement, layout_for,
                                         measured_vt_tier, predict_kernel)

    benches = list(all_benchmarks())
    archs = (ArchMode.BASELINE, ArchMode.VT)
    preds = {}
    for bench in benches:
        layout = layout_for(bench, scale)
        for p in predict_kernel(bench.kernel, cfg, archs=archs, layout=layout):
            preds[(bench.name, p.arch)] = p
    records = run_matrix(benches, archs, cfg, scale, keep_going=keep_going,
                         parallel=jobs, journal_dir=sweep_dir, store=store)

    rows = []
    cells = {}
    disagreements = []
    failures = {}
    for bench in benches:
        by_arch = {arch: records[(bench.name, arch)] for arch in archs}
        ok_runs = all(record.ok for record in by_arch.values())
        measured_tier = (measured_vt_tier(by_arch[ArchMode.BASELINE].cycles,
                                          by_arch[ArchMode.VT].cycles)
                         if ok_runs else "-")
        limiter = limiter_summary(bench.kernel, cfg)["limiter"]
        for arch in archs:
            record = by_arch[arch]
            pred = preds[(bench.name, arch)]
            if not record.ok:
                failures[(bench.name, arch)] = record
                rows.append((bench.name, arch, pred.limiter, pred.idle_class,
                             "-", "-", pred.vt_tier, measured_tier,
                             _cycles_cell(record)))
                continue
            breakdown = record.stats.idle_breakdown()
            agrees, dominant, ratio = idle_agreement(pred.idle_class, breakdown)
            limiter_ok = pred.limiter == limiter
            cells[(bench.name, arch)] = {
                "predicted_idle": pred.idle_class,
                "measured_idle": dominant,
                "tie_ratio": ratio,
                "idle_ok": agrees,
                "limiter_ok": limiter_ok,
                "binding": pred.binding,
                "predicted_tier": pred.vt_tier,
                "measured_tier": measured_tier,
            }
            if not (agrees and limiter_ok):
                disagreements.append((bench.name, arch))
            mark = "=" if pred.idle_class == dominant else (
                "~" if agrees else "X")
            rows.append((bench.name, arch, pred.limiter, pred.idle_class,
                         dominant, mark, pred.vt_tier, measured_tier,
                         pred.binding))
    agree_count = sum(1 for c in cells.values()
                      if c["idle_ok"] and c["limiter_ok"])
    report = format_table(
        ("benchmark", "arch", "limiter", "idle(pred)", "idle(sim)", "ok",
         "tier(pred)", "tier(sim)", "binding rule"),
        rows,
        title=(f"X4 (validation) - static oracle vs simulator "
               f"({agree_count}/{len(cells)} cells agree; "
               "'~' = within tie tolerance)"),
    )
    parts = [report]
    if disagreements:
        parts.append("")
        parts.append("DISAGREEMENTS (the agreement gate fails):")
        for name, arch in disagreements:
            cell = cells[name, arch]
            parts.append(
                f"  {name}/{arch}: predicted {cell['predicted_idle']} "
                f"(via {cell['binding']}), simulator says "
                f"{cell['measured_idle']} (ratio {cell['tie_ratio']:.2f})")
    data = {"cells": cells, "disagreements": disagreements,
            "failures": failures, "records": records, "predictions": preds}
    return "\n".join(parts), data


# ---------------------------------------------------------------------------
# X6 — static cycle bounds: soundness, tightness, and co-residency
# ---------------------------------------------------------------------------

def x6_bound_table(cfg: GPUConfig | None = None, scale: float = 1.0):
    """Sound [lo, hi] cycle intervals vs the simulator, plus pair verdicts.

    The quantitative counterpart of X4: for every (kernel, gate arch,
    mode) cell, :func:`repro.isa.analysis.bounds.bench_bounds` derives a
    closed interval the simulated cycle count must fall into; the table
    reports the measured count, containment, and the ``hi/lo`` tightness
    ratio.  A second table summarizes the co-residency composer
    (:func:`repro.isa.analysis.compose.pair_matrix`): admission verdicts
    and contention reasons for every kernel pair on the primary arch.
    ``repro bound --all --check`` gates the same containment in CI.

    ``cfg`` overrides the gate arches with a single custom config.
    """
    from repro.isa.analysis.bounds import bench_bounds, gate_configs
    from repro.isa.analysis.compose import pair_matrix

    configs = {cfg.arch or "custom": cfg} if cfg is not None else gate_configs()
    benches = sorted(all_benchmarks(), key=lambda b: b.name)

    rows = []
    cells = {}
    violations = []
    for arch, gate_cfg in configs.items():
        for bench in benches:
            for mode in ("baseline", "vt"):
                kb = bench_bounds(bench, gate_cfg, mode=mode, scale=scale,
                                  arch=arch)
                record = run_benchmark(bench, gate_cfg.with_(arch=mode),
                                       scale=scale)
                cycles = record.stats.cycles
                sound = kb.contains(cycles)
                cells[(bench.name, arch, mode)] = {
                    "lo": kb.lo, "hi": kb.hi, "sim": cycles,
                    "sound": sound, "tightness": kb.tightness,
                }
                if not sound:
                    violations.append((bench.name, arch, mode))
                rows.append((bench.name, arch, mode, kb.lo, cycles, kb.hi,
                             f"{kb.tightness:.1f}x",
                             "yes" if sound else "NO"))
    sound_count = sum(1 for c in cells.values() if c["sound"])
    bound_report = format_table(
        ("benchmark", "arch", "mode", "lo", "sim", "hi", "hi/lo", "sound"),
        rows,
        title=(f"X6 (validation) - static cycle bounds vs simulator "
               f"({sound_count}/{len(cells)} cells contained)"),
    )

    pair_arch, pair_cfg = next(iter(configs.items()))
    verdicts = pair_matrix(benches, pair_cfg, scale=scale, arch=pair_arch)
    counts = {}
    reason_hist = {}
    for v in verdicts:
        counts[v.verdict] = counts.get(v.verdict, 0) + 1
        for reason in v.reasons:
            reason_hist[reason] = reason_hist.get(reason, 0) + 1
    pair_rows = ([(k, str(n)) for k, n in sorted(counts.items())]
                 + [(f"reason: {k}", str(n))
                    for k, n in sorted(reason_hist.items())])
    pair_report = format_table(
        ("verdict / contention reason", "pairs"),
        pair_rows,
        title=(f"X6 (co-residency) - {len(verdicts)} kernel-pair verdicts "
               f"on {pair_arch}"),
    )
    parts = [bound_report, "", pair_report]
    if violations:
        parts.append("")
        parts.append("VIOLATIONS (the bound gate fails):")
        for name, arch, mode in violations:
            cell = cells[(name, arch, mode)]
            parts.append(f"  {name}/{arch}/{mode}: sim {cell['sim']} "
                         f"outside [{cell['lo']}, {cell['hi']}]")
    data = {"cells": cells, "violations": violations,
            "pair_verdicts": verdicts, "verdict_counts": counts,
            "reason_counts": reason_hist}
    return "\n".join(parts), data


# ---------------------------------------------------------------------------
# doctor — sanitizer-on smoke sweep (the `repro doctor` subcommand)
# ---------------------------------------------------------------------------

def doctor_report(scale: float = 0.25, sms: int = 1, benches=None, archs=ARCHS,
                  jobs: int | None = None, sweep_dir=None, fuzz_dir=None,
                  store=None):
    """Quick health sweep: every benchmark under every architecture with
    the per-cycle invariant sanitizer enabled, crash-tolerantly.

    Returns ``(report, data)``; ``data['failures']`` lists the failing
    (bench, arch) pairs (empty on a healthy tree).  Small scale by
    default: the point is exercising every state machine under the
    sanitizer, not performance numbers.  ``ok*`` marks a cell that only
    passed after a retry.

    With ``fuzz_dir`` the report also lists the fuzz reproducer dumps
    found there (next to any deadlock forensics), flagging dumps whose
    fingerprint no longer matches their own spec/config — the same
    stale-fingerprint discipline ``repro fuzz --replay`` enforces —
    in ``data['reproducers']``.

    With ``store`` (a result-store root or handle) the store is audited
    *before* the sweep — every entry's checksum re-verified, corrupt
    entries quarantined, orphaned temp files from crashed writers
    collected — and the smoke sweep then reads/writes through it.  The
    audit lands in ``data['store_report']`` and the report text; a store
    that lost entries to quarantine in this audit makes the doctor exit
    unhealthy (see ``StoreReport.healthy``).
    """
    store_report = None
    if store is not None:
        from repro.store.cas import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        store_report = store.verify()
    cfg = scaled_fermi(num_sms=sms, sanitize=True)
    if benches is None:
        benches = all_benchmarks()
    else:
        benches = [get(name) if isinstance(name, str) else name for name in benches]
    records = run_matrix(benches, archs, cfg, scale, keep_going=True,
                         parallel=jobs, journal_dir=sweep_dir, store=store)
    rows = []
    failures = []
    for bench in benches:
        cells = []
        for arch in archs:
            record = records[(bench.name, arch)]
            if record.ok:
                marker = "*" if record.retried else ""
                cells.append(f"ok{marker} ({record.cycles} cyc)")
            else:
                cells.append(record.failure)
                failures.append((bench.name, arch, record))
        rows.append((bench.name, *cells))
    report = format_table(
        ("benchmark", *archs), rows,
        title=f"doctor - sanitizer-on smoke sweep (scale {scale:g}, {sms} SM)",
    )
    verdict = (
        f"\n{len(failures)} failing cell(s):\n" + "\n".join(
            f"  {name}/{arch}: {record.error}" for name, arch, record in failures)
        if failures else
        f"\nall {len(rows) * len(archs)} cells clean under the sanitizer"
    )
    data = {"records": records, "failures": failures}
    if store_report is not None:
        data["store_report"] = store_report
        rep = store_report
        verdict += (
            f"\n\nresult store {store.root}: "
            f"{rep.verified}/{rep.entries} entries verified, "
            f"{len(rep.quarantined_now)} quarantined in this audit "
            f"({rep.quarantined_before} previously), "
            f"{rep.orphan_temps_removed} orphaned temp file(s) collected, "
            f"{rep.artifacts} artifact(s), {rep.bytes} bytes")
        for name in rep.quarantined_now:
            verdict += f"\n  quarantined: {name}"
    if fuzz_dir is not None:
        from repro.fuzz.campaign import list_reproducers

        entries = list_reproducers(fuzz_dir)
        data["reproducers"] = entries
        if entries:
            fuzz_rows = []
            for entry in entries:
                if "error" in entry:
                    fuzz_rows.append((entry["path"], "unreadable", "-",
                                      entry["error"]))
                else:
                    fuzz_rows.append((
                        entry["path"],
                        "STALE" if entry["stale"] else "replayable",
                        entry["instructions"],
                        ", ".join(entry["kinds"])))
            verdict += "\n\n" + format_table(
                ("reproducer dump", "state", "instrs", "divergence kinds"),
                fuzz_rows, title=f"fuzz reproducers under {fuzz_dir} "
                                 f"(replay with: repro fuzz --replay <file>)")
        else:
            verdict += f"\n\nno fuzz reproducers under {fuzz_dir}"
    return report + verdict, data


# ---------------------------------------------------------------------------
# sweep — the `repro sweep` subcommand: the full matrix, orchestrated
# ---------------------------------------------------------------------------

def sweep_report(benches=None, archs=ARCHS, scale: float = 1.0, sms: int = 2,
                 *, jobs: int = 2, wall_timeout: float | None = None,
                 retries: int = 1, sweep_dir=None, resume: bool = False,
                 max_cycles: int | None = None, sanitize: bool = False,
                 fast_forward: bool = True, engine: str = "serial",
                 sim_jobs: int = 1, progress=None, store=None):
    """The (benchmark x arch) matrix through the subprocess orchestrator.

    Returns ``(report, result)`` where ``result`` is the
    :class:`~repro.analysis.orchestrator.SweepResult` — the report is the
    final ok/retried/failed summary table with dump paths.  With
    ``sweep_dir`` the journal makes the sweep resumable after any crash
    (``resume=True`` skips journaled cells); with ``store`` completed
    cells are read from / written to the global content-addressed result
    store, so identical cells across *different* sweeps never re-simulate.
    """
    from repro.analysis.orchestrator import matrix_cells, run_sweep

    cfg = scaled_fermi(num_sms=sms, sanitize=sanitize,
                       fast_forward=fast_forward, engine=engine,
                       sim_jobs=sim_jobs)
    if benches is None:
        benches = all_benchmarks()
    else:
        benches = [get(name) if isinstance(name, str) else name for name in benches]
    cells = matrix_cells(benches, archs, cfg, scale, max_cycles=max_cycles)
    result = run_sweep(cells, jobs=jobs, wall_timeout=wall_timeout,
                       retries=retries, journal_dir=sweep_dir, resume=resume,
                       progress=progress, store=store)
    return result.summary_table(), result


#: Experiment registry for the harness and docs.
ALL_EXPERIMENTS = {
    "E1": e1_config_table,
    "E2": e2_benchmark_table,
    "E3": e3_cta_residency,
    "E4": e4_idle_cycles,
    "E5": e5_speedup,
    "E6": e6_tlp,
    "E7": e7_swap_latency,
    "E8": e8_vcta_degree,
    "E9": e9_schedulers,
    "E10": e10_mem_latency,
    "E11": e11_overhead,
    "E12": e12_ablation,
    "X1": x1_contention,
    "X2": x2_kepler,
    "X3": x3_full_chip,
    "X4": x4_prediction_table,
    "X6": x6_bound_table,
}
