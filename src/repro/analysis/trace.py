"""CTA-lifecycle tracing: ASCII timelines of Virtual Thread in action.

Attach a :class:`CTATracer` to ``GPU.launch(..., tracer=...)`` and render
a Gantt-style view of every CTA's state over time::

    cta  0 AAAAAAAAiiiiAAAA----
    cta  8 iiiiAAAAAAAAiiii----
           ^ A=active  i=inactive  s=switching  .=not resident  -=finished

This is both a debugging aid and the visual argument of the paper: under
VT, the 'A' rows interleave — stalled CTAs hand their scheduling slots to
ready ones instead of squatting on them.
"""

from __future__ import annotations

from repro.sim.cta import CTAState

_SYMBOL = {
    CTAState.ACTIVE: "A",
    CTAState.INACTIVE: "i",
    CTAState.SWAP_OUT: "s",
    CTAState.SWAP_IN: "s",
    CTAState.FINISHED: "-",
}


class CTATracer:
    """Samples resident-CTA states every ``stride`` cycles."""

    def __init__(self, stride: int = 64, sm_id: int = 0):
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.stride = stride
        self.sm_id = sm_id
        #: cta_id -> {sample_index: symbol}
        self.samples: dict[int, dict[int, str]] = {}
        self.sample_count = 0
        self._finished: set[int] = set()

    def on_cycle(self, now: int, sms) -> None:
        """Called by the GPU main loop every cycle."""
        if now % self.stride:
            return
        index = self.sample_count
        self.sample_count += 1
        if self.sm_id >= len(sms):
            return
        sm = sms[self.sm_id]
        for cta in sm.manager.resident:
            self.samples.setdefault(cta.cta_id, {})[index] = _SYMBOL[cta.state]
            self._finished.discard(cta.cta_id)

    def render_timeline(self, max_ctas: int = 24, width: int | None = None) -> str:
        """The per-CTA state timeline as aligned text."""
        if not self.samples:
            return "(no samples)"
        cta_ids = sorted(self.samples)[:max_ctas]
        total = self.sample_count
        columns = width or total
        lines = [
            f"CTA state timeline, SM {self.sm_id} "
            f"(1 column = {self.stride * max(1, total // columns)} cycles; "
            "A=active i=inactive s=switching .=not resident -=finished)"
        ]
        for cta_id in cta_ids:
            row_samples = self.samples[cta_id]
            first = min(row_samples)
            last = max(row_samples)
            row = []
            for index in range(total):
                if index < first:
                    row.append(".")
                elif index > last:
                    row.append("-")
                else:
                    row.append(row_samples.get(index, "?"))
            row = _compress(row, columns)
            lines.append(f"cta {cta_id:3d} {''.join(row)}")
        if len(self.samples) > max_ctas:
            lines.append(f"... ({len(self.samples) - max_ctas} more CTAs)")
        return "\n".join(lines)

    def state_fractions(self, cta_id: int) -> dict[str, float]:
        """Fraction of samples each state symbol occupied for one CTA."""
        row = self.samples.get(cta_id)
        if not row:
            return {}
        counts: dict[str, int] = {}
        for symbol in row.values():
            counts[symbol] = counts.get(symbol, 0) + 1
        total = len(row)
        return {symbol: count / total for symbol, count in counts.items()}


def _compress(row: list[str], columns: int) -> list[str]:
    """Downsample a symbol row to at most ``columns`` buckets.

    Each bucket shows its most 'interesting' symbol (switching beats
    active beats inactive) so rare swap events stay visible.
    """
    if len(row) <= columns:
        return row
    priority = {"s": 4, "A": 3, "i": 2, ".": 1, "-": 0, "?": 0}
    bucket = -(-len(row) // columns)
    out = []
    for start in range(0, len(row), bucket):
        chunk = row[start : start + bucket]
        out.append(max(chunk, key=lambda c: priority.get(c, 0)))
    return out
