"""Geometric-mean helpers (the paper reports geomean speedups)."""

from __future__ import annotations

import math
from typing import Iterable, Mapping


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty input or non-positive entries."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_summary(speedups: Mapping[str, float]) -> str:
    """One-line summary: geomean plus min/max with their benchmarks."""
    if not speedups:
        return "no data"
    gm = geomean(speedups.values())
    lo = min(speedups, key=speedups.get)
    hi = max(speedups, key=speedups.get)
    return (
        f"geomean x{gm:.3f} ({(gm - 1) * 100:+.1f}%), "
        f"min {lo} x{speedups[lo]:.3f}, max {hi} x{speedups[hi]:.3f}"
    )
