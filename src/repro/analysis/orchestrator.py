"""Process-isolated, checkpointed sweep orchestration.

``run_matrix`` executes a sweep serially inside the calling interpreter:
one segfault, OOM kill, or Ctrl-C loses the whole multi-hour matrix, and a
pathological cell can only be bounded in *cycles*, not wall-clock time.
This module runs each (benchmark, config, scale) cell as a **job** in its
own worker subprocess (``multiprocessing`` *spawn* context — a fresh
interpreter, nothing shared), so:

* a worker dying for any reason costs one cell, not the sweep;
* every cell has a **wall-clock deadline** — the parent kills the worker
  outright when it expires, complementing the in-simulation cycle budget
  and progress watchdog (which cannot fire if the interpreter itself is
  wedged or thrashing);
* completed cells stream into an append-only JSONL journal
  (:mod:`repro.analysis.journal`), keyed by a deterministic fingerprint,
  so ``repro sweep --resume`` re-runs only what is missing after a crash
  or interrupt.

Failure handling is a per-status retry policy (:data:`RETRY_POLICY`) with
exponential backoff + jitter:

* ``timeout``      — retried with a **doubled cycle budget** (the budget
  may simply have been tight for this cell);
* ``wall-timeout`` — retried with a **doubled wall-clock budget**;
* ``worker-died``  — retried in a fresh process (transient OOM/segfault);
* ``deadlock`` / ``violation`` / ``check-failed`` / ``error`` — never
  retried: these are deterministic, more attempts cannot help.

The pool also **degrades gracefully**: repeated worker deaths halve the
pool (memory pressure is the usual culprit) down to one worker, and if
workers keep dying even then, the orchestrator falls back to the existing
in-process serial path (:func:`repro.analysis.runner.run_benchmark_safe`)
for the remaining cells rather than aborting the sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field

from repro.analysis.journal import (
    Journal,
    JournalEntry,
    cell_fingerprint,
    config_from_dict,
    config_to_dict,
    record_from_dict,
    record_to_dict,
)
from repro.analysis.runner import RunRecord, run_benchmark_safe
from repro.analysis.tables import format_table
from repro.sim.config import GPUConfig

# NOTE: repro.store.cas imports this package's journal module, so pulling
# it in at module scope would be a circular import when the store package
# loads first; run_sweep/to_summary import it lazily instead.

#: Statuses the orchestrator adds on top of ``runner.STATUSES``.
ORCHESTRATOR_STATUSES = ("wall-timeout", "worker-died")

#: status -> retryable?  (See module docstring for the rationale.)
RETRY_POLICY = {
    "timeout": True,
    "wall-timeout": True,
    "worker-died": True,
    "deadlock": False,
    "violation": False,
    "check-failed": False,
    "error": False,
    "divergence": False,  # fuzz cases are deterministic end to end
    "ok": False,
}

#: Consecutive worker deaths before the pool is halved (and, once the pool
#: is already a single worker, before falling back to in-process serial).
DEGRADE_AFTER = 3


@dataclass
class SweepCell:
    """One unit of sweep work: a benchmark name + a full configuration.

    Benchmarks are carried *by name* and re-resolved from the registry
    inside the worker — only plain data crosses the process boundary.
    ``key`` is how the caller wants the result keyed (defaults to
    ``(benchmark, arch)``, matching ``run_matrix``).
    """

    benchmark: str
    cfg: GPUConfig
    scale: float = 1.0
    check: bool = True
    max_cycles: int | None = None
    faults: object | None = None  # FaultPlan; picklable, spawn-safe
    workload_seed: int = 0
    key: tuple | None = None
    #: Which worker entry point runs this cell: "bench" resolves
    #: ``benchmark`` from the kernel registry; "fuzz" hands the payload to
    #: :func:`repro.fuzz.campaign.run_fuzz_cell` (for fuzz cells,
    #: ``faults`` carries the injected fault plan as a plain field dict).
    runner: str = "bench"
    #: Extra runner-specific payload (plain data only); fuzz cells carry
    #: {"spec": ..., "oracle": ...} here.  Not part of the fingerprint —
    #: fuzz encodes the spec fingerprint in ``benchmark`` instead.
    extra: dict = field(default_factory=dict)
    #: Test-only fault injection: worker attempts (1-based) on which the
    #: worker hard-exits at startup, simulating a segfault/OOM kill.
    die_on_attempts: tuple[int, ...] = ()

    def __post_init__(self):
        if self.key is None:
            self.key = (self.benchmark, self.cfg.arch)

    @property
    def fingerprint(self) -> str:
        return cell_fingerprint(self.benchmark, self.cfg, self.scale,
                                self.workload_seed)


@dataclass
class SweepResult:
    """Everything a sweep produced, plus how hard it had to work."""

    records: dict[tuple, RunRecord] = field(default_factory=dict)
    attempts: dict[tuple, int] = field(default_factory=dict)
    resumed: list[tuple] = field(default_factory=list)  # keys skipped via journal
    cached: list[tuple] = field(default_factory=list)  # keys served by the store
    fingerprints: dict[tuple, str] = field(default_factory=dict)
    dump_paths: dict[tuple, str] = field(default_factory=dict)
    journal_path: str | None = None
    store_stats: dict | None = None  # ResultStore counters, when attached
    quarantined_lines: int = 0
    degraded_to_serial: bool = False
    final_pool_size: int = 0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records.values())

    def counts(self) -> dict[str, int]:
        ok = sum(1 for r in self.records.values() if r.ok)
        retried = sum(1 for k, r in self.records.items()
                      if self.attempts.get(k, 1) > 1 or r.retried)
        return {
            "total": len(self.records),
            "ok": ok,
            "failed": len(self.records) - ok,
            "retried": retried,
            "resumed": len(self.resumed),
            "cached": len(self.cached),
        }

    def summary_table(self) -> str:
        """The final per-cell summary: status, attempts, dump paths.

        ``ok*`` marks a cell that only succeeded after a retry — a healthy
        sweep should not hide that a cell needed a second attempt.
        """
        rows = []
        for key in sorted(self.records, key=str):
            record = self.records[key]
            attempts = self.attempts.get(key, 1)
            marker = "*" if (attempts > 1 or record.retried) else ""
            cell = (f"ok{marker} ({record.cycles} cyc)" if record.ok
                    else record.failure)
            note = ("cached" if key in self.cached
                    else "resumed" if key in self.resumed else "")
            rows.append(("/".join(str(part) for part in key), cell,
                         attempts, self.dump_paths.get(key, "") or note))
        counts = self.counts()
        table = format_table(
            ("cell", "result", "attempts", "dump / note"), rows,
            title=f"sweep summary - {counts['ok']}/{counts['total']} ok "
                  f"({counts['retried']} retried, {counts['resumed']} resumed, "
                  f"{counts['cached']} cached)",
        )
        notes = []
        if any(self.attempts.get(k, 1) > 1 or r.retried
               for k, r in self.records.items()):
            notes.append("* = completed only after a retry")
        if self.degraded_to_serial:
            notes.append("pool degraded to the in-process serial path "
                         "after repeated worker deaths")
        if self.quarantined_lines:
            notes.append(f"{self.quarantined_lines} corrupted journal line(s) "
                         f"quarantined at resume")
        if self.cached:
            notes.append(f"{len(self.cached)} cell(s) served from the result "
                         f"store without re-simulating")
        if self.journal_path:
            notes.append(f"journal: {self.journal_path}")
        return table + ("\n" + "\n".join(notes) if notes else "")

    def to_summary(self) -> dict:
        """Machine-readable sweep summary (``repro sweep --format json``).

        Mirrors the lint/predict JSON discipline: external callers (the CI
        serve smoke job in particular) assert on structured results instead
        of scraping the summary table.  Per-cell ``stats_sha256`` is the
        byte-identity witness; the full stats dict rides along so byte
        comparisons need no second run.
        """
        from repro.store.cas import stats_digest

        cells = []
        for key in sorted(self.records, key=str):
            record = self.records[key]
            stats = record.stats.to_dict() if record.stats is not None else None
            cells.append({
                "key": [str(part) for part in key],
                "benchmark": record.benchmark,
                "arch": record.arch,
                "fingerprint": self.fingerprints.get(key),
                "status": record.status,
                "ok": record.ok,
                "attempts": self.attempts.get(key, 1),
                "retried": record.retried,
                "resumed": key in self.resumed,
                "cached": key in self.cached,
                "cycles": record.stats.cycles if record.ok else None,
                "error": record.error,
                "dump_path": self.dump_paths.get(key),
                "stats_sha256": stats_digest(stats),
                "stats": stats,
            })
        return {
            "v": 1,
            "ok": self.ok,
            "counts": self.counts(),
            "journal": self.journal_path,
            "store": self.store_stats,
            "quarantined_lines": self.quarantined_lines,
            "degraded_to_serial": self.degraded_to_serial,
            "cells": cells,
        }


# ---------------------------------------------------------------------------
# Worker side (runs in a spawned subprocess)
# ---------------------------------------------------------------------------

def _worker_main(conn, payload: dict) -> None:
    """Entry point of one worker process: run one cell, send one dict.

    Must stay importable at module top level — the *spawn* start method
    re-imports this module in the child to find it.  Everything that can
    go wrong inside is converted into a record dict; only a hard crash
    (segfault, OOM kill, ``os._exit``) leaves the pipe empty, which the
    parent classifies as ``worker-died``.
    """
    if payload["attempt"] in payload["die_on_attempts"]:
        os._exit(86)  # simulated hard crash (test hook)
    try:
        if payload.get("runner") == "fuzz":
            from repro.fuzz.campaign import run_fuzz_cell

            record = run_fuzz_cell(payload)
        else:
            from repro.kernels.registry import get

            cfg = config_from_dict(payload["config"])
            bench = get(payload["benchmark"])
            record = run_benchmark_safe(
                bench, cfg, payload["scale"], payload["check"],
                max_cycles=payload["max_cycles"], faults=payload["faults"],
                retry_timeouts=False,  # retries are the orchestrator's job
            )
        conn.send(record_to_dict(record))
    except BaseException as exc:  # noqa: BLE001 - last-ditch isolation
        conn.send({
            "benchmark": payload["benchmark"],
            "arch": payload["config"].get("arch", "?"),
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "dump": None, "retried": False, "stats": None,
            "config": payload["config"],
        })
    finally:
        conn.close()


def _cell_payload(cell: SweepCell, attempt: int, max_cycles: int | None) -> dict:
    return {
        "benchmark": cell.benchmark,
        "config": config_to_dict(cell.cfg),
        "scale": cell.scale,
        "check": cell.check,
        "max_cycles": max_cycles,
        "faults": cell.faults,
        "runner": cell.runner,
        "extra": cell.extra,
        "attempt": attempt,
        "die_on_attempts": cell.die_on_attempts,
    }


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass
class _Job:
    """One cell's sweep state across attempts."""

    cell: SweepCell
    attempt: int = 0  # attempts started so far
    max_cycles: int | None = None  # current cycle budget (doubles on timeout)
    wall_budget: float | None = None  # current wall budget (doubles on kill)
    ready_at: float = 0.0  # monotonic time before which backoff holds it
    started: float = 0.0
    first_started: float | None = None
    proc: object | None = None
    conn: object | None = None

    def launch(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.attempt += 1
        payload = _cell_payload(self.cell, self.attempt, self.max_cycles)
        proc = ctx.Process(target=_worker_main, args=(child_conn, payload),
                           daemon=True)
        proc.start()
        child_conn.close()  # parent keeps only the read end
        self.proc, self.conn = proc, parent_conn
        self.started = time.monotonic()
        if self.first_started is None:
            self.first_started = self.started

    def reap(self) -> dict | None:
        """Collect the worker's result dict, or None if it died silently."""
        result = None
        try:
            if self.conn.poll(0):
                result = self.conn.recv()
        except (EOFError, OSError):
            result = None
        self.proc.join()
        self.conn.close()
        self.proc, self.conn = None, None
        return result

    def kill(self) -> None:
        self.proc.kill()
        self.proc.join()
        self.conn.close()
        self.proc, self.conn = None, None

    @property
    def deadline(self) -> float | None:
        if self.wall_budget is None:
            return None
        return self.started + self.wall_budget

    @property
    def elapsed(self) -> float:
        return time.monotonic() - (self.first_started or self.started)


def _failed_record(cell: SweepCell, status: str, message: str) -> RunRecord:
    return RunRecord(benchmark=cell.benchmark, arch=cell.cfg.arch, stats=None,
                     config=cell.cfg, status=status, error=message)


def run_sweep(cells, *, jobs: int = 1, wall_timeout: float | None = None,
              retries: int = 1, journal_dir=None, resume: bool = False,
              store=None, backoff_base: float = 0.5, backoff_cap: float = 30.0,
              seed: int = 0, progress=None) -> SweepResult:
    """Run every cell, each in its own worker subprocess; never raises for
    a cell-level failure.

    ``jobs`` is the worker-pool width (``0`` forces the in-process serial
    path — no isolation, but also no spawn overhead; still journaled and
    resumable).  ``wall_timeout`` is the per-cell wall-clock budget in
    seconds (``None`` = unbounded: only the cycle budget and watchdog
    bound the cell).  ``retries`` caps *extra* attempts per cell under
    :data:`RETRY_POLICY`.  With ``journal_dir`` every completed cell is
    journaled; adding ``resume`` skips cells already present (matched by
    fingerprint) and quarantines corrupted lines.

    ``store`` (a :class:`~repro.store.cas.ResultStore` or its root path)
    attaches the global content-addressed cache: cells whose fingerprint
    has a verified entry are served from it without simulating (tracked in
    ``SweepResult.cached``), every freshly computed ``ok`` cell is
    committed back crash-safely, and each computed cell emits an
    ``artifacts/<fp>.json`` audit record.  The per-sweep journal and the
    global store compose — journal resume stays sweep-local.

    Duplicate fingerprints in ``cells`` are an error: the journal could
    not tell their results apart.
    """
    cells = list(cells)
    by_print: dict[str, SweepCell] = {}
    for cell in cells:
        other = by_print.setdefault(cell.fingerprint, cell)
        if other is not cell:
            raise ValueError(
                f"duplicate sweep cell: {cell.key} and {other.key} have the "
                f"same fingerprint (same benchmark, config, scale, and seed)")

    journal = Journal.open(journal_dir, resume=resume) if journal_dir else None
    if store is not None:
        from repro.store.cas import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
    rng = random.Random(seed)
    result = SweepResult(journal_path=str(journal.path) if journal else None,
                         quarantined_lines=journal.quarantined if journal else 0)

    def note(message: str) -> None:
        if progress:
            progress(message)

    # -- resume: skip cells already journaled (sweep-local) or with a
    # verified entry in the global result store ---------------------------
    todo: list[_Job] = []
    for cell in cells:
        result.fingerprints[cell.key] = cell.fingerprint
        entry = journal.lookup(cell.fingerprint) if journal else None
        if entry is not None:
            result.records[cell.key] = entry.record
            result.attempts[cell.key] = entry.attempts
            result.resumed.append(cell.key)
            if entry.dump_path:
                result.dump_paths[cell.key] = entry.dump_path
            continue
        cached = store.get(cell.fingerprint) if store is not None else None
        if cached is not None:
            result.records[cell.key] = cached.record
            result.attempts[cell.key] = cached.attempts
            result.cached.append(cell.key)
            if journal:  # make the sweep dir self-contained for resume
                journal.append(JournalEntry(
                    fingerprint=cell.fingerprint, record=cached.record,
                    attempts=cached.attempts, elapsed_s=cached.elapsed_s,
                    scale=cell.scale, seed=cell.workload_seed))
            continue
        todo.append(_Job(cell=cell, max_cycles=cell.max_cycles,
                         wall_budget=wall_timeout))
    if result.resumed or result.cached:
        note(f"resume: {len(result.resumed)}/{len(cells)} cells already "
             f"journaled, {len(result.cached)} served from the store, "
             f"{len(todo)} to run")

    def finalize(job: _Job, record: RunRecord) -> None:
        key = job.cell.key
        result.records[key] = record
        result.attempts[key] = job.attempt
        dump_path = None
        if journal:
            dump_path = journal.write_dump(job.cell.fingerprint, record.dump)
            journal.append(JournalEntry(
                fingerprint=job.cell.fingerprint, record=record,
                attempts=job.attempt, elapsed_s=job.elapsed,
                scale=job.cell.scale, seed=job.cell.workload_seed,
                dump_path=dump_path))
        if dump_path:
            result.dump_paths[key] = dump_path
        if store is not None and record.ok:
            from repro.store.cas import build_artifact

            finished = time.time()
            path = store.put(
                job.cell.fingerprint, record, scale=job.cell.scale,
                seed=job.cell.workload_seed, attempts=job.attempt,
                elapsed_s=job.elapsed)
            store.write_artifact(job.cell.fingerprint, build_artifact(
                job.cell.fingerprint, record, scale=job.cell.scale,
                seed=job.cell.workload_seed, attempts=job.attempt,
                elapsed_s=job.elapsed, source="computed",
                started_at=finished - job.elapsed, finished_at=finished,
                store_path=str(path) if path else None))

    def run_serial(job: _Job) -> None:
        """The degraded / ``jobs=0`` path: in-process, no isolation."""
        from repro.kernels.registry import get

        job.attempt += 1
        if job.first_started is None:
            job.first_started = time.monotonic()
        if job.cell.runner == "fuzz":
            from repro.fuzz.campaign import run_fuzz_cell

            finalize(job, run_fuzz_cell(
                _cell_payload(job.cell, job.attempt, job.max_cycles)))
            return
        try:
            bench = get(job.cell.benchmark)
        except KeyError as exc:
            finalize(job, _failed_record(job.cell, "error", str(exc)))
            return
        record = run_benchmark_safe(
            bench, job.cell.cfg, job.cell.scale, job.cell.check,
            max_cycles=job.max_cycles, faults=job.cell.faults,
            retry_timeouts=retries > 0, wall_budget=wall_timeout)
        if record.retried:
            job.attempt += 1
        finalize(job, record)

    if jobs <= 0:
        for job in todo:
            run_serial(job)
        result.final_pool_size = 0
        if store is not None:
            result.store_stats = store.stats.to_dict()
        return result

    # -- the process pool -------------------------------------------------
    ctx = multiprocessing.get_context("spawn")
    pool_size = max(1, jobs)
    pending = list(todo)  # jobs waiting for a slot (or for backoff)
    active: list[_Job] = []
    death_streak = 0  # consecutive worker deaths, reset by any result
    serial_fallback = False

    def backoff(job: _Job) -> None:
        delay = min(backoff_cap, backoff_base * (2 ** (job.attempt - 1)))
        delay *= 1.0 + rng.random()  # jitter: avoid lockstep retries
        job.ready_at = time.monotonic() + delay

    def settle(job: _Job, record: RunRecord) -> None:
        """Retry under the policy, or finalize the cell."""
        nonlocal death_streak
        retryable = RETRY_POLICY.get(record.status, False)
        allowance = retries
        if record.status == "worker-died":
            death_streak += 1
            # Worker deaths get a more generous allowance than --retries:
            # a sick *environment* should trip the pool-degradation logic
            # (which needs DEGRADE_AFTER consecutive deaths, twice) before
            # any one cell is terminally charged for it.  A cell that
            # reliably kills its own worker still fails terminally here.
            allowance = max(retries, 2 * DEGRADE_AFTER)
        else:
            death_streak = 0
        if retryable and job.attempt <= allowance:
            if record.status == "timeout":
                budget = job.max_cycles or job.cell.cfg.max_cycles
                job.max_cycles = 2 * budget  # a tight budget, not a hang
            elif record.status == "wall-timeout" and job.wall_budget:
                job.wall_budget *= 2
            backoff(job)
            note(f"{'/'.join(map(str, job.cell.key))}: {record.status} on "
                 f"attempt {job.attempt}, retrying")
            pending.append(job)
            return
        record.retried = record.retried or job.attempt > 1
        finalize(job, record)

    try:
        while pending or active:
            now = time.monotonic()
            # Degrade: repeated worker deaths mean the environment (not one
            # cell) is sick — shrink the pool, then give up on isolation.
            if death_streak >= DEGRADE_AFTER:
                death_streak = 0
                if pool_size > 1:
                    pool_size = max(1, pool_size // 2)
                    note(f"repeated worker deaths: pool degraded to "
                         f"{pool_size} worker(s)")
                else:
                    serial_fallback = True
                    note("workers keep dying: falling back to the "
                         "in-process serial path")
            if serial_fallback:
                # Drain what is still running, then finish serially.
                for job in active:
                    job.kill()
                    job.attempt -= 1  # the killed attempt is not charged
                    pending.append(job)
                active.clear()
                for job in pending:
                    run_serial(job)
                pending.clear()
                result.degraded_to_serial = True
                break

            # Launch while there are free slots and ready jobs.
            ready = [j for j in pending if j.ready_at <= now]
            while ready and len(active) < pool_size:
                job = ready.pop(0)
                pending.remove(job)
                job.launch(ctx)
                active.append(job)

            # Poll the active set: results, deaths, blown deadlines.
            for job in list(active):
                got_result = False
                try:
                    got_result = job.conn.poll(0)
                except (EOFError, OSError):
                    pass
                if got_result or not job.proc.is_alive():
                    active.remove(job)
                    data = job.reap()
                    if data is None:
                        settle(job, _failed_record(
                            job.cell, "worker-died",
                            f"worker exited without a result "
                            f"(attempt {job.attempt})"))
                    else:
                        settle(job, record_from_dict(data))
                elif job.deadline is not None and now >= job.deadline:
                    budget = job.wall_budget
                    job.kill()
                    active.remove(job)
                    settle(job, _failed_record(
                        job.cell, "wall-timeout",
                        f"wall-clock deadline ({budget:g}s) exceeded on "
                        f"attempt {job.attempt}"))
            if pending or active:
                time.sleep(0.02)
    except KeyboardInterrupt:
        # Leave a clean journal behind: everything finalized so far is
        # durable; in-flight workers are killed, their cells untouched —
        # exactly what --resume needs.
        for job in active:
            job.kill()
        note("interrupted: journal is resumable with --resume")
        raise

    result.final_pool_size = pool_size
    if store is not None:
        result.store_stats = store.stats.to_dict()
    return result


def matrix_cells(benches, archs, base_cfg: GPUConfig, scale: float = 1.0,
                 check: bool = True, max_cycles: int | None = None) -> list[SweepCell]:
    """The (benchmark x arch) matrix as sweep cells, keyed like ``run_matrix``."""
    return [
        SweepCell(benchmark=bench.name, cfg=base_cfg.with_(arch=arch),
                  scale=scale, check=check, max_cycles=max_cycles)
        for bench in benches for arch in archs
    ]
