"""Experiment harness: run matrices of (benchmark × architecture × config)
and render the paper's tables and figure series as aligned-text reports.

The per-experiment entry points live in :mod:`repro.analysis.experiments`
(one function per paper artifact, E1..E12); the pytest-benchmark wrappers
under ``benchmarks/`` call straight into them.
"""

from repro.analysis.geomean import geomean, speedup_summary
from repro.analysis.journal import (
    Journal,
    cell_fingerprint,
    record_from_dict,
    record_to_dict,
)
from repro.analysis.orchestrator import (
    SweepCell,
    SweepResult,
    matrix_cells,
    run_sweep,
)
from repro.analysis.runner import (
    RunRecord,
    run_benchmark,
    run_benchmark_safe,
    run_matrix,
)
from repro.analysis.trace import CTATracer
from repro.analysis.tables import ascii_bars, format_table

__all__ = [
    "geomean",
    "speedup_summary",
    "Journal",
    "cell_fingerprint",
    "record_to_dict",
    "record_from_dict",
    "SweepCell",
    "SweepResult",
    "matrix_cells",
    "run_sweep",
    "RunRecord",
    "run_benchmark",
    "run_benchmark_safe",
    "run_matrix",
    "ascii_bars",
    "format_table",
    "CTATracer",
]
