"""Experiment harness: run matrices of (benchmark × architecture × config)
and render the paper's tables and figure series as aligned-text reports.

The per-experiment entry points live in :mod:`repro.analysis.experiments`
(one function per paper artifact, E1..E12); the pytest-benchmark wrappers
under ``benchmarks/`` call straight into them.
"""

from repro.analysis.geomean import geomean, speedup_summary
from repro.analysis.runner import (
    RunRecord,
    run_benchmark,
    run_benchmark_safe,
    run_matrix,
)
from repro.analysis.trace import CTATracer
from repro.analysis.tables import ascii_bars, format_table

__all__ = [
    "geomean",
    "speedup_summary",
    "RunRecord",
    "run_benchmark",
    "run_benchmark_safe",
    "run_matrix",
    "ascii_bars",
    "format_table",
    "CTATracer",
]
