"""Aligned-text rendering for tables and bar-series ("figures")."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_bars(items: Iterable[tuple[str, float]], width: int = 40,
               reference: float | None = None, unit: str = "") -> str:
    """Horizontal bar chart for figure-style series.

    ``reference`` (e.g. 1.0 for normalized speedups) draws a '|' marker so
    above/below-baseline bars read at a glance.
    """
    items = list(items)
    if not items:
        return "(no data)"
    peak = max(v for _label, v in items)
    peak = max(peak, reference or 0.0) or 1.0
    label_w = max(len(label) for label, _v in items)
    lines = []
    for label, value in items:
        bar = "#" * max(0, round(value / peak * width))
        if reference is not None:
            ref_pos = round(reference / peak * width)
            bar = (bar + " " * (width + 1 - len(bar)))
            bar = bar[:ref_pos] + "|" + bar[ref_pos + 1:]
        lines.append(f"{label.ljust(label_w)}  {value:7.3f}{unit}  {bar.rstrip()}")
    return "\n".join(lines)
