"""Run benchmarks under configurations and collect results.

Every run re-prepares the workload (fresh global memory, same seeds) so
architecture comparisons see identical inputs, and every run's outputs are
checked against the numpy reference — a timing result with wrong values
never makes it into a report.

Two failure disciplines coexist:

* :func:`run_benchmark` raises on any failure — the right behaviour for
  tests and single interactive runs.
* :func:`run_benchmark_safe` and ``run_matrix(keep_going=True)`` isolate
  each run: failures are captured into the :class:`RunRecord` (``status``,
  ``error``, and the forensic ``dump`` for hangs), transient
  ``SimulationTimeout``s are retried once with a doubled cycle budget, and
  the rest of the matrix keeps going.  A multi-hour sweep survives one
  poisoned cell and reports it instead of dying.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.kernels.base import Benchmark, CheckFailure
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU, ProgressDeadlock, SimulationTimeout
from repro.sim.sanitizer import InvariantViolation
from repro.sim.stats import SimStats

#: RunRecord.status values, roughly ordered by how alarming they are.
#: ``wall-timeout`` / ``worker-died`` are produced only by the subprocess
#: orchestrator (:mod:`repro.analysis.orchestrator`): a worker killed at
#: its wall-clock deadline, and a worker that died without reporting
#: (segfault/OOM).  ``divergence`` is produced only by fuzz cells
#: (:mod:`repro.fuzz.campaign`): the differential harness disagreed.
STATUSES = ("ok", "timeout", "deadlock", "violation", "check-failed", "error",
            "wall-timeout", "worker-died", "divergence")


@dataclass
class RunRecord:
    """Result of one (benchmark, config) simulation — successful or not."""

    benchmark: str
    arch: str
    stats: SimStats | None
    config: GPUConfig
    status: str = "ok"
    error: str | None = None
    dump: str | None = None  # deadlock forensics, when the run hung
    retried: bool = False  # True when a retry with a raised budget ran

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def cycles(self) -> int:
        if self.stats is None:
            raise RuntimeError(
                f"{self.benchmark}/{self.arch} failed ({self.status}): {self.error}")
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        if self.stats is None:
            raise RuntimeError(
                f"{self.benchmark}/{self.arch} failed ({self.status}): {self.error}")
        return self.stats.ipc

    @property
    def failure(self) -> str:
        """Compact ``FAILED(<reason>)`` cell for partial report tables."""
        return f"FAILED({self.status})"


def run_benchmark(bench: Benchmark, cfg: GPUConfig, scale: float = 1.0,
                  check: bool = True, *, max_cycles: int | None = None,
                  faults=None) -> RunRecord:
    """Simulate ``bench`` under ``cfg`` and verify its output; raises on
    timeout, deadlock, invariant violation, or check failure."""
    prepared = bench.prepare(scale)
    gpu = GPU(cfg)
    result = gpu.launch(bench.kernel, prepared.grid_dim, prepared.gmem,
                        prepared.params, max_cycles=max_cycles, faults=faults)
    if check:
        prepared.check(result)
    return RunRecord(benchmark=bench.name, arch=cfg.arch, stats=result.stats, config=cfg)


def _classify(exc: Exception) -> str:
    if isinstance(exc, ProgressDeadlock):
        return "deadlock"
    if isinstance(exc, SimulationTimeout):
        return "timeout"
    if isinstance(exc, InvariantViolation):
        return "violation"
    if isinstance(exc, CheckFailure):
        return "check-failed"
    return "error"


def run_benchmark_safe(bench: Benchmark, cfg: GPUConfig, scale: float = 1.0,
                       check: bool = True, *, max_cycles: int | None = None,
                       faults=None, retry_timeouts: bool = True,
                       wall_budget: float | None = None) -> RunRecord:
    """Like :func:`run_benchmark`, but never raises: failures come back as
    a :class:`RunRecord` with ``status``/``error`` (and ``dump`` for hangs).

    A plain ``SimulationTimeout`` may just mean the cycle budget was tight
    for this (bench, arch) pair, so it is retried once with a doubled
    budget.  A ``ProgressDeadlock`` is *not* retried: zero forward progress
    does not improve with more cycles.

    ``wall_budget`` bounds both attempts *together* in wall-clock seconds.
    Simulated time scales ~linearly with wall time, so the retry's cycle
    budget is clamped to what the remaining budget can actually afford; a
    retry that could not even re-simulate the first attempt's cycles is
    skipped (and a clamped retry that still times out is reported) as
    ``wall-timeout`` — an unbounded 2x retry overshooting the deadline
    used to surface as a misleading second ``timeout``.
    """
    def attempt(budget: int | None) -> RunRecord:
        try:
            return run_benchmark(bench, cfg, scale, check,
                                 max_cycles=budget, faults=faults)
        except Exception as exc:  # noqa: BLE001 - isolation point by design
            return RunRecord(
                benchmark=bench.name, arch=cfg.arch, stats=None, config=cfg,
                status=_classify(exc),
                error=f"{type(exc).__name__}: {exc}",
                dump=getattr(exc, "dump", None),
            )

    start = time.monotonic()
    record = attempt(max_cycles)
    if retry_timeouts and record.status == "timeout":
        first_budget = max_cycles if max_cycles is not None else cfg.max_cycles
        budget = 2 * first_budget
        clamped = False
        if wall_budget is not None:
            elapsed = max(time.monotonic() - start, 1e-9)
            remaining = wall_budget - elapsed
            affordable = int(first_budget * remaining / elapsed)
            if affordable <= first_budget:
                record.status = "wall-timeout"
                record.error = (
                    f"timeout at {first_budget} cycles; retry skipped: "
                    f"{remaining:.1f}s of the {wall_budget:g}s wall budget "
                    f"left cannot fit the first attempt again")
                return record
            if affordable < budget:
                budget, clamped = affordable, True
        record = attempt(budget)
        record.retried = True
        if clamped and record.status == "timeout":
            record.status = "wall-timeout"
            record.error = (
                f"retry budget clamped to {budget} cycles by the "
                f"{wall_budget:g}s wall budget and still timed out: {record.error}")
    return record


def run_matrix(benches, archs, base_cfg: GPUConfig, scale: float = 1.0,
               check: bool = True, *, keep_going: bool = False,
               retry_timeouts: bool = True,
               run_timeout_cycles: int | None = None,
               parallel: int | None = None,
               journal_dir=None, resume: bool = False,
               store=None,
               wall_timeout: float | None = None,
               retries: int = 1) -> dict[tuple[str, str], RunRecord]:
    """Run every (benchmark, arch) pair; returns {(bench, arch): record}.

    With ``keep_going`` each cell is isolated: a failing run is captured
    as a failed :class:`RunRecord` and the sweep continues — callers must
    filter on ``record.ok``.  Without it (the default) the first failure
    raises, matching the historical strict behaviour.
    ``run_timeout_cycles`` bounds each individual run's cycle budget.

    ``parallel`` / ``journal_dir`` / ``store`` switch the sweep onto the
    subprocess orchestrator (:func:`repro.analysis.orchestrator.run_sweep`):
    ``parallel`` workers each run one cell in an isolated process under a
    ``wall_timeout``-second deadline, with ``journal_dir`` completed
    cells are checkpointed so ``resume=True`` skips them after a crash,
    and with ``store`` (a result-store root or handle) every cell reads
    through the global content-addressed cache and writes back on
    completion.  The orchestrator is inherently keep-going; benchmarks
    must come from the registry (workers re-resolve them by name).
    """
    if parallel is not None or journal_dir is not None or store is not None:
        from repro.analysis.orchestrator import matrix_cells, run_sweep

        cells = matrix_cells(benches, archs, base_cfg, scale, check,
                             max_cycles=run_timeout_cycles)
        result = run_sweep(cells, jobs=1 if parallel is None else parallel,
                           wall_timeout=wall_timeout, retries=retries,
                           journal_dir=journal_dir, resume=resume,
                           store=store)
        return result.records

    records: dict[tuple[str, str], RunRecord] = {}
    for bench in benches:
        for arch in archs:
            cfg = base_cfg.with_(arch=arch)
            if keep_going:
                records[(bench.name, arch)] = run_benchmark_safe(
                    bench, cfg, scale, check, max_cycles=run_timeout_cycles,
                    retry_timeouts=retry_timeouts)
            else:
                records[(bench.name, arch)] = run_benchmark(
                    bench, cfg, scale, check, max_cycles=run_timeout_cycles)
    return records
