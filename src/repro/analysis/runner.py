"""Run benchmarks under configurations and collect results.

Every run re-prepares the workload (fresh global memory, same seeds) so
architecture comparisons see identical inputs, and every run's outputs are
checked against the numpy reference — a timing result with wrong values
never makes it into a report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.base import Benchmark
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.stats import SimStats


@dataclass
class RunRecord:
    """Result of one (benchmark, config) simulation."""

    benchmark: str
    arch: str
    stats: SimStats
    config: GPUConfig

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def run_benchmark(bench: Benchmark, cfg: GPUConfig, scale: float = 1.0,
                  check: bool = True) -> RunRecord:
    """Simulate ``bench`` under ``cfg`` and verify its output."""
    prepared = bench.prepare(scale)
    gpu = GPU(cfg)
    result = gpu.launch(bench.kernel, prepared.grid_dim, prepared.gmem, prepared.params)
    if check:
        prepared.check(result)
    return RunRecord(benchmark=bench.name, arch=cfg.arch, stats=result.stats, config=cfg)


def run_matrix(benches, archs, base_cfg: GPUConfig, scale: float = 1.0,
               check: bool = True) -> dict[tuple[str, str], RunRecord]:
    """Run every (benchmark, arch) pair; returns {(bench, arch): record}."""
    records: dict[tuple[str, str], RunRecord] = {}
    for bench in benches:
        for arch in archs:
            cfg = base_cfg.with_(arch=arch)
            records[(bench.name, arch)] = run_benchmark(bench, cfg, scale, check)
    return records
