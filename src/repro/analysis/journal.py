"""Append-only JSONL sweep journal with deterministic cell fingerprints.

A sweep writes one JSON object per *completed* cell (success or terminal
failure) to ``journal.jsonl`` inside the sweep directory.  Each entry is
keyed by a **fingerprint**: a SHA-256 digest over the benchmark name, the
full :class:`~repro.sim.config.GPUConfig` field set, the workload scale,
and the workload seed.  Resume (``repro sweep --resume DIR``) replays the
journal and skips cells whose fingerprint already has an entry; any change
to the benchmark, an architecture knob, the scale, or the seed changes the
fingerprint, so a stale entry from an earlier (different) matrix is never
silently reused.

Journal schema (one JSON object per line; see docs/ARCHITECTURE.md):

    {"v": 1, "fingerprint": "…", "benchmark": "stride", "arch": "vt",
     "scale": 1.0, "seed": 0, "status": "ok", "error": null,
     "retried": false, "attempts": 1, "elapsed_s": 12.3,
     "stats": {…SimStats.to_dict()…} | null, "dump_path": "…" | null,
     "config": {…GPUConfig fields…}}

The journal is *append-only* and each line is flushed + fsynced before the
cell is considered done — and the containing directory is fsynced when the
file is first created, so a crash right after creation cannot lose the
whole journal — meaning a SIGKILL at any point loses at most the cell
that was in flight.  A corrupted or truncated line (the classic torn final
line after a hard kill) is **quarantined**: it is copied to
``journal.jsonl.quarantine`` and skipped, never crashing a resume.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.runner import RunRecord
from repro.sim.config import GPUConfig
from repro.sim.stats import SimStats
from repro.store.fsio import fsync_dir

SCHEMA_VERSION = 1

JOURNAL_NAME = "journal.jsonl"


# ---------------------------------------------------------------------------
# GPUConfig / RunRecord <-> dict
# ---------------------------------------------------------------------------

def config_to_dict(cfg: GPUConfig) -> dict:
    """``GPUConfig`` as a JSON-safe dict (all fields are primitives)."""
    return dataclasses.asdict(cfg)


def config_from_dict(data: dict) -> GPUConfig:
    """Rebuild a ``GPUConfig``, ignoring unknown keys (forward compat)."""
    known = {f.name for f in dataclasses.fields(GPUConfig)}
    return GPUConfig(**{k: v for k, v in data.items() if k in known})


def record_to_dict(record: RunRecord) -> dict:
    """A :class:`RunRecord` as a JSON-safe dict (round-trips losslessly)."""
    return {
        "benchmark": record.benchmark,
        "arch": record.arch,
        "status": record.status,
        "error": record.error,
        "dump": record.dump,
        "retried": record.retried,
        "stats": record.stats.to_dict() if record.stats is not None else None,
        "config": config_to_dict(record.config),
    }


def record_from_dict(data: dict) -> RunRecord:
    stats = data.get("stats")
    return RunRecord(
        benchmark=data["benchmark"],
        arch=data["arch"],
        stats=SimStats.from_dict(stats) if stats is not None else None,
        config=config_from_dict(data.get("config") or {}),
        status=data.get("status", "ok"),
        error=data.get("error"),
        dump=data.get("dump"),
        retried=bool(data.get("retried", False)),
    )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

def cell_fingerprint(benchmark: str, cfg: GPUConfig, scale: float,
                     workload_seed: int = 0) -> str:
    """Deterministic identity of one sweep cell.

    Depends on every ``GPUConfig`` field, so tweaking *any* knob (swap
    cost, scheduler, cache size, …) invalidates old journal entries for
    that cell instead of resuming into wrong numbers.  Hex-truncated to 16
    chars: 64 bits is collision-free for any realistic matrix.
    """
    payload = {
        "benchmark": benchmark,
        "scale": float(scale),
        "seed": int(workload_seed),
        "config": config_to_dict(cfg),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------

@dataclass
class JournalEntry:
    """One parsed journal line: a completed cell and how it got there."""

    fingerprint: str
    record: RunRecord
    attempts: int = 1
    elapsed_s: float = 0.0
    scale: float = 1.0
    seed: int = 0
    dump_path: str | None = None

    def to_json(self) -> dict:
        data = record_to_dict(self.record)
        return {
            "v": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "benchmark": data["benchmark"],
            "arch": data["arch"],
            "scale": self.scale,
            "seed": self.seed,
            "status": data["status"],
            "error": data["error"],
            "retried": data["retried"],
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 3),
            "stats": data["stats"],
            "dump_path": self.dump_path,
            "config": data["config"],
        }

    @classmethod
    def from_json(cls, data: dict) -> "JournalEntry":
        if not isinstance(data, dict) or "fingerprint" not in data:
            raise ValueError("journal line is not a cell entry")
        if data.get("v", SCHEMA_VERSION) > SCHEMA_VERSION:
            raise ValueError(f"journal schema v{data['v']} is newer than this reader")
        return cls(
            fingerprint=data["fingerprint"],
            record=record_from_dict(data),
            attempts=int(data.get("attempts", 1)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            scale=float(data.get("scale", 1.0)),
            seed=int(data.get("seed", 0)),
            dump_path=data.get("dump_path"),
        )


@dataclass
class Journal:
    """Append-only JSONL journal for one sweep directory.

    ``entries`` maps fingerprint -> latest :class:`JournalEntry`; a later
    line for the same fingerprint wins (a resumed sweep may legitimately
    re-run a cell, e.g. after the retry budget was raised).
    """

    path: Path
    entries: dict[str, JournalEntry] = field(default_factory=dict)
    quarantined: int = 0  # corrupted lines skipped at load

    @classmethod
    def open(cls, directory: str | os.PathLike, resume: bool = False) -> "Journal":
        """Open (creating the directory) the journal under ``directory``.

        With ``resume`` existing entries are loaded — corrupted lines are
        quarantined to ``journal.jsonl.quarantine`` and skipped.  Without
        it a pre-existing journal is an error: silently appending a new
        sweep onto an old journal mixes matrices.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / JOURNAL_NAME
        journal = cls(path=path)
        if path.exists():
            if not resume:
                raise FileExistsError(
                    f"{path} already exists; pass resume=True "
                    f"(repro sweep --resume) or choose a fresh directory")
            journal._load()
        return journal

    def _load(self) -> None:
        bad_lines: list[str] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = JournalEntry.from_json(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    bad_lines.append(line)
                    continue
                self.entries[entry.fingerprint] = entry
        if bad_lines:
            self.quarantined = len(bad_lines)
            quarantine = self.path.with_suffix(self.path.suffix + ".quarantine")
            created = not quarantine.exists()
            with quarantine.open("a", encoding="utf-8") as handle:
                for line in bad_lines:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            if created:
                fsync_dir(quarantine.parent)

    def append(self, entry: JournalEntry) -> None:
        """Durably append one completed cell (flush + fsync per line).

        On the append that *creates* the file, the containing directory is
        fsynced too: fsyncing the file alone makes the bytes durable but
        not the directory entry, so a crash right after creation could
        lose the whole journal even though every line was fsynced.
        """
        line = json.dumps(entry.to_json(), sort_keys=True)
        created = not self.path.exists()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if created:
            fsync_dir(self.path.parent)
        self.entries[entry.fingerprint] = entry

    def lookup(self, fingerprint: str) -> JournalEntry | None:
        return self.entries.get(fingerprint)

    def write_dump(self, fingerprint: str, dump: str | None) -> str | None:
        """Persist a forensic dump under ``<dir>/dumps/``; returns its path."""
        if not dump:
            return None
        dumps = self.path.parent / "dumps"
        dumps.mkdir(exist_ok=True)
        path = dumps / f"{fingerprint}.txt"
        path.write_text(dump + "\n", encoding="utf-8")
        fsync_dir(dumps)
        return str(path)
