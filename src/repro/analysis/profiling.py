"""Component-time profiling for a single simulation run.

``repro run --profile out.json`` wraps the launch in :mod:`cProfile` and
buckets the flat profile by simulator component — scheduler scan, LD/ST
and caches, the memory system, functional execution, sanitizer, VT
machinery — so "where does simulation wall time go?" has a one-command
answer.  Attribution uses *total time per function* (``tottime``), so the
buckets are disjoint and sum (plus ``other``) to the profiled total.

The numbers carry cProfile's instrumentation overhead (a few-x slowdown
on this workload mix); they are for comparing components against each
other, not for absolute throughput claims.
"""

from __future__ import annotations

import cProfile
import json
import pathlib
import pstats
from typing import Callable

#: Ordered (bucket, filename fragments) pairs; first match wins.  Paths
#: are matched on the module basename within the repro package.
_BUCKETS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("scheduler_scan", ("sim/smcore.py", "sim/schedulers.py",
                        "sim/scoreboard.py", "sim/warp.py", "sim/cta.py",
                        "sim/ctamanager.py")),
    ("ldst_cache", ("sim/ldst.py", "sim/cache.py")),
    ("memsys", ("sim/memsys.py", "sim/dram.py", "sim/icnt.py",
                "sim/memory.py")),
    ("functional_exec", ("sim/exec.py",)),
    ("sanitizer", ("sim/sanitizer.py",)),
    ("vt", ("vt/", "core/policies.py")),
    ("parallel_engine", ("sim/parallel.py",)),
    ("gpu_loop", ("sim/gpu.py",)),
)


def _bucket_for(filename: str) -> str:
    path = filename.replace("\\", "/")
    marker = "/repro/"
    pos = path.rfind(marker)
    if pos < 0:
        return "other"
    rel = path[pos + len(marker):]
    for bucket, fragments in _BUCKETS:
        for fragment in fragments:
            if fragment in rel:
                return bucket
    return "other"


def profile_run(fn: Callable[[], object]) -> tuple[object, dict]:
    """Run ``fn`` under cProfile; return ``(fn's result, profile dict)``.

    The dict maps bucket name -> ``{"seconds", "share", "calls"}``, plus
    ``"total_seconds"`` and a ``"top"`` list of the heaviest individual
    functions for drill-down.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    buckets: dict[str, dict] = {}
    total = 0.0
    rows = []
    for (filename, lineno, name), (cc, _nc, tottime, _cum, _callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        bucket = _bucket_for(filename)
        entry = buckets.setdefault(bucket, {"seconds": 0.0, "calls": 0})
        entry["seconds"] += tottime
        entry["calls"] += cc
        total += tottime
        rows.append((tottime, f"{pathlib.Path(filename).name}:{lineno}:{name}", cc))
    for entry in buckets.values():
        entry["seconds"] = round(entry["seconds"], 6)
        entry["share"] = round(entry["seconds"] / total, 4) if total else 0.0
    rows.sort(reverse=True)
    report = {
        "total_seconds": round(total, 6),
        "buckets": dict(sorted(buckets.items(),
                               key=lambda kv: -kv[1]["seconds"])),
        "top": [{"function": where, "seconds": round(t, 6), "calls": cc}
                for t, where, cc in rows[:20]],
    }
    return result, report


def write_profile(report: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")


def format_profile(report: dict) -> str:
    lines = [f"{'component':18s} {'seconds':>9s} {'share':>7s} {'calls':>12s}"]
    for bucket, entry in report["buckets"].items():
        lines.append(f"{bucket:18s} {entry['seconds']:>9.3f} "
                     f"{entry['share']:>6.1%} {entry['calls']:>12d}")
    lines.append(f"{'total':18s} {report['total_seconds']:>9.3f}")
    return "\n".join(lines)
