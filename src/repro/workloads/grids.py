"""2D-grid inputs for the stencil benchmarks."""

from __future__ import annotations

import numpy as np


def random_grid(height: int, width: int, seed: int = 0, low: float = 0.0, high: float = 1.0):
    """A random ``height × width`` field, row-major float64."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, (height, width))


def stencil5_reference(field: np.ndarray, center_weight: float, neighbor_weight: float):
    """5-point stencil with clamped (replicated) borders — the reference
    for the hotspot-like kernel."""
    padded = np.pad(field, 1, mode="edge")
    north = padded[:-2, 1:-1]
    south = padded[2:, 1:-1]
    west = padded[1:-1, :-2]
    east = padded[1:-1, 2:]
    return center_weight * field + neighbor_weight * (north + south + east + west)
