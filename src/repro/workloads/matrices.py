"""Sparse-matrix inputs for SPMV."""

from __future__ import annotations

import numpy as np


def random_csr_matrix(rows: int, cols: int, avg_nnz_per_row: int, seed: int = 0):
    """Random CSR matrix with per-row nnz in 1..2*avg (irregular rows).

    Returns ``(row_ptr, col_idx, values)``; indices are exact float64.
    """
    rng = np.random.default_rng(seed)
    nnz_per_row = rng.integers(1, 2 * avg_nnz_per_row + 1, rows)
    row_ptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(nnz_per_row, out=row_ptr[1:])
    total = int(row_ptr[-1])
    col_idx = rng.integers(0, cols, total)
    values = rng.uniform(0.1, 1.0, total)
    return row_ptr.astype(np.float64), col_idx.astype(np.float64), values


def csr_matvec(row_ptr, col_idx, values, x):
    """Reference y = A @ x over the CSR triplet."""
    rp = row_ptr.astype(np.int64)
    ci = col_idx.astype(np.int64)
    y = np.zeros(len(rp) - 1)
    for r in range(len(y)):
        lo, hi = rp[r], rp[r + 1]
        y[r] = float(values[lo:hi] @ x[ci[lo:hi]])
    return y
