"""Deterministic input generators for the benchmark kernels.

Every generator takes an explicit seed (defaulting per-workload) so runs
are reproducible; all inputs are small positive floats/ints that the
float64-backed memory model represents exactly where exactness matters
(indices, counters).
"""

from repro.workloads.arrays import random_array, random_ints
from repro.workloads.graphs import random_csr_graph, bfs_levels
from repro.workloads.matrices import random_csr_matrix
from repro.workloads.grids import random_grid

__all__ = [
    "random_array",
    "random_ints",
    "random_csr_graph",
    "bfs_levels",
    "random_csr_matrix",
    "random_grid",
]
