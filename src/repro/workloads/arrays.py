"""Dense-array inputs."""

from __future__ import annotations

import numpy as np


def random_array(n: int, seed: int = 0, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Uniform floats in [low, high); float64, reproducible."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, n)


def random_ints(n: int, seed: int = 0, low: int = 0, high: int = 256) -> np.ndarray:
    """Uniform integers in [low, high) stored as exact float64."""
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, n).astype(np.float64)
