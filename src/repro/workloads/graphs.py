"""Graph inputs for the BFS benchmark: random CSR graphs and BFS levels."""

from __future__ import annotations

import numpy as np

INF_LEVEL = 1_000_000  # "unvisited" marker that survives float64 exactly


def random_csr_graph(num_nodes: int, avg_degree: int, seed: int = 0):
    """A random directed graph in CSR form.

    Returns ``(row_ptr, col_idx)`` as exact-integer float64 arrays.  Degree
    varies per node (0..2*avg_degree) so warps diverge on the neighbour
    loop, reproducing BFS's irregular control flow.
    """
    rng = np.random.default_rng(seed)
    degrees = rng.integers(0, 2 * avg_degree + 1, num_nodes)
    row_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=row_ptr[1:])
    col_idx = rng.integers(0, num_nodes, int(row_ptr[-1]))
    return row_ptr.astype(np.float64), col_idx.astype(np.float64)


def bfs_levels(row_ptr: np.ndarray, col_idx: np.ndarray, source: int, max_level: int | None = None):
    """Reference BFS levels (INF_LEVEL where unreachable)."""
    n = len(row_ptr) - 1
    level = np.full(n, INF_LEVEL, dtype=np.int64)
    level[source] = 0
    frontier = [source]
    depth = 0
    rp = row_ptr.astype(np.int64)
    ci = col_idx.astype(np.int64)
    while frontier and (max_level is None or depth < max_level):
        nxt = []
        for v in frontier:
            for j in range(rp[v], rp[v + 1]):
                w = ci[j]
                if level[w] == INF_LEVEL:
                    level[w] = depth + 1
                    nxt.append(w)
        frontier = nxt
        depth += 1
    return level.astype(np.float64)


def bfs_expand_level(row_ptr, col_idx, level, current: int):
    """One BFS level expansion (what the kernel performs): every node at
    ``current`` marks unvisited neighbours ``current + 1``."""
    rp = row_ptr.astype(np.int64)
    ci = col_idx.astype(np.int64)
    out = level.copy()
    for v in np.flatnonzero(level == current):
        for j in range(rp[v], rp[v + 1]):
            w = ci[j]
            if out[w] == INF_LEVEL:
                out[w] = current + 1
    return out
