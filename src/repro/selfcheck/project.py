"""AST project model: every module under one root, parsed and indexed.

:class:`Project` loads a source tree (``src/repro`` or a fixture tree)
with nothing but the stdlib ``ast`` module and builds the tables the
analyses need:

* modules with their import alias maps and module-global names,
* classes with base names, methods, dataclass fields, and per-attribute
  type/set-typedness facts inferred from ``self.x = …`` assignments,
* a flat function table keyed by dotted qualname
  (``sim.parallel._Shard.advance``), including methods.

Type inference is deliberately shallow — constructor calls, annotated
parameters flowing into attributes, and ``self`` — because the analyses
only need receiver *candidates*, never exact types: an unresolved
receiver degrades to a duck-typed candidate set, which every rule treats
conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

DATACLASS_DECORATORS = {"dataclass", "dataclasses.dataclass"}


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        base = _decorator_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def annotation_name(node: ast.expr | None) -> str | None:
    """Best-effort class name out of an annotation node (``SMCore``,
    ``"SMCore"``, ``SMCore | None``, ``Optional[SMCore]``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the first identifier.
        text = node.value.strip().split("|")[0].strip()
        return text.split("[")[0].strip() or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return annotation_name(node.left)
    if isinstance(node, ast.Subscript):
        base = annotation_name(node.value)
        if base in ("Optional", "Final", "ClassVar"):
            return annotation_name(node.slice)
        return base
    return None


@dataclass
class FunctionInfo:
    """One function or method: its AST plus where it lives."""

    qualname: str  # "sim.parallel._Shard.advance"
    module: str  # "sim.parallel"
    cls: str | None  # "_Shard" or None for module functions
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    path: Path
    lineno: int


@dataclass
class ClassInfo:
    """One class: methods, bases, and inferred attribute facts."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> candidate class names (from ``self.x = Cls(...)`` and
    #: ``self.x = param`` with an annotated param)
    attr_types: dict[str, set[str]] = field(default_factory=dict)
    #: attrs assigned a set-typed value anywhere in the class
    set_attrs: set[str] = field(default_factory=set)
    class_vars: set[str] = field(default_factory=set)
    is_dataclass: bool = False
    fields: list[str] = field(default_factory=list)  # dataclass fields


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  # dotted, relative to the project root
    path: Path
    tree: ast.Module
    source_lines: list[str]
    #: local alias -> dotted origin ("np" -> "numpy",
    #: "MemoryModel" -> "repro.sim.memsys.MemoryModel")
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    global_names: set[str] = field(default_factory=set)


class Project:
    """Every module under ``root``, parsed and cross-indexed."""

    def __init__(self, root: str | Path):
        self.root = Path(root).resolve()
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._load()

    # -- loading -------------------------------------------------------------

    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.root).with_suffix("")
        parts = list(rel.parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else "__init__"

    def _load(self) -> None:
        paths = sorted(self.root.rglob("*.py"))
        if not paths:
            raise ValueError(f"no python sources under {self.root}")
        for path in paths:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
            name = self._module_name(path)
            mod = ModuleInfo(name=name, path=path, tree=tree,
                             source_lines=source.splitlines())
            self._index_module(mod)
            self.modules[name] = mod
        # Cross-module indexes.
        for mod in self.modules.values():
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
                    self.methods_by_name.setdefault(method.name, []).append(method)
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn

    def _index_module(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    mod.imports[local] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{base}.{alias.name}" if base else alias.name
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod.name}.{node.name}"
                mod.functions[node.name] = FunctionInfo(
                    qualname=qual, module=mod.name, cls=None, name=node.name,
                    node=node, path=mod.path, lineno=node.lineno)
            elif isinstance(node, ast.ClassDef):
                mod.classes[node.name] = self._index_class(mod, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        mod.global_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                mod.global_names.add(node.target.id)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        cls = ClassInfo(
            qualname=f"{mod.name}.{node.name}", module=mod.name,
            name=node.name, node=node,
            bases=[b for b in (annotation_name(base) for base in node.bases) if b],
            is_dataclass=any(_decorator_name(d) in DATACLASS_DECORATORS
                             for d in node.decorator_list),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = FunctionInfo(
                    qualname=f"{cls.qualname}.{item.name}", module=mod.name,
                    cls=cls.name, name=item.name, node=item, path=mod.path,
                    lineno=item.lineno)
            elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                if cls.is_dataclass:
                    ann = annotation_name(item.annotation)
                    if ann == "ClassVar" or (
                            isinstance(item.annotation, ast.Subscript)
                            and annotation_name(item.annotation.value) == "ClassVar"):
                        cls.class_vars.add(item.target.id)
                    else:
                        cls.fields.append(item.target.id)
                else:
                    cls.class_vars.add(item.target.id)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        cls.class_vars.add(target.id)
        self._infer_attrs(mod, cls)
        return cls

    # -- shallow attribute inference -----------------------------------------

    def _infer_attrs(self, mod: ModuleInfo, cls: ClassInfo) -> None:
        """Scan every ``self.x = …`` in the class body for attribute type
        candidates and set-typedness (constructor calls, annotated params,
        set displays/calls)."""
        for method in cls.methods.values():
            params: dict[str, str] = {}
            args = method.node.args
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                ann = annotation_name(arg.annotation)
                if ann:
                    params[arg.arg] = ann
            for sub in ast.walk(method.node):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(sub, ast.Assign):
                    targets, value = sub.targets, sub.value
                elif isinstance(sub, ast.AnnAssign):
                    targets, value = [sub.target], sub.value
                    ann = annotation_name(sub.annotation)
                    if (ann in ("set", "frozenset")
                            and isinstance(sub.target, ast.Attribute)
                            and isinstance(sub.target.value, ast.Name)
                            and sub.target.value.id == "self"):
                        cls.set_attrs.add(sub.target.attr)
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    attr = target.attr
                    if value is None:
                        continue
                    if is_set_expr(value, set(), cls.set_attrs):
                        cls.set_attrs.add(attr)
                    for name in self._value_types(value, params):
                        cls.attr_types.setdefault(attr, set()).add(name)

    @staticmethod
    def _value_types(value: ast.expr, params: dict[str, str]) -> list[str]:
        if isinstance(value, ast.Call):
            name = None
            if isinstance(value.func, ast.Name):
                name = value.func.id
            elif isinstance(value.func, ast.Attribute):
                name = value.func.attr
            if name and name[:1].isupper():  # constructor-looking call
                return [name]
        elif isinstance(value, ast.Name) and value.id in params:
            return [params[value.id]]
        return []


def is_set_expr(node: ast.expr, set_locals: set[str],
                set_attrs: set[str]) -> bool:
    """Is ``node`` statically known to evaluate to an unordered set?

    ``set_locals`` are local names currently bound to sets;
    ``set_attrs`` are ``self.<attr>`` names assigned sets in the class.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in ("union", "intersection", "difference",
                          "symmetric_difference"):
                return is_set_expr(node.func.value, set_locals, set_attrs)
            if method == "copy":
                return is_set_expr(node.func.value, set_locals, set_attrs)
            if method == "keys":
                # dict.keys() is insertion-ordered in py3.7+: NOT a set.
                return False
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (is_set_expr(node.left, set_locals, set_attrs)
                or is_set_expr(node.right, set_locals, set_attrs))
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr in set_attrs
    return False
