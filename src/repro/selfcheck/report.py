"""Selfcheck orchestration: run every analysis, apply suppressions and
the baseline, render the report.

Suppression comment syntax (on the finding line or the line above)::

    x = risky()  # selfcheck: ok[det-set-iter] -- membership only, sorted downstream

A suppression without a ``-- reason`` is itself an error
(``meta-bare-suppression``): the analyzer refuses to accumulate
unexplained exemptions.  The baseline file is JSON::

    {"version": 1, "entries": [
        {"rule": "schema-orphan-read", "path": "analysis/journal.py",
         "qualname": "analysis.journal.JournalEntry.from_json",
         "reason": "legacy v0 'dump' key still accepted on read"}]}

Baseline entries must carry a reason (``meta-unjustified-baseline``) and
must still match a finding (``meta-stale-baseline``), so the debt list
can only shrink.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.tables import format_table
from repro.selfcheck.callgraph import CallGraph
from repro.selfcheck.determinism import check_determinism
from repro.selfcheck.effects import summarize_all
from repro.selfcheck.isolation import (check_isolation, entry_write_summaries,
                                       worker_entries)
from repro.selfcheck.project import Project
from repro.selfcheck.rules import ERROR, RULES, Finding
from repro.selfcheck.schema import check_schema

SUPPRESS_RE = re.compile(
    r"#\s*selfcheck:\s*ok\[(?P<rule>[a-z0-9-]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?")

BASELINE_VERSION = 1


@dataclass
class SelfcheckReport:
    """Everything one run produced."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    baseline_path: str | None = None
    baseline_used: int = 0
    baseline_stale: int = 0
    #: per worker entry: transitively reachable state-write sites
    worker_summaries: dict[str, int] = field(default_factory=dict)
    modules: int = 0
    functions: int = 0

    def ok(self, strict: bool = False) -> bool:
        return not any(f.gates(strict) for f in self.findings)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            if f.active:
                out[f.rule] = out.get(f.rule, 0) + 1
        return out

    # selfcheck: ok[schema-field-coverage] -- baseline_*/worker_summaries are serialized nested under the 'baseline' and 'worker_entries' keys
    def to_dict(self, strict: bool = False) -> dict:
        return {
            "version": BASELINE_VERSION,
            "root": self.root,
            "strict": strict,
            "ok": self.ok(strict),
            "modules": self.modules,
            "functions": self.functions,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts(),
            "baseline": {
                "path": self.baseline_path,
                "used": self.baseline_used,
                "stale": self.baseline_stale,
            },
            "worker_entries": self.worker_summaries,
        }

    def render_table(self, strict: bool = False) -> str:
        rows = []
        for f in self.findings:
            if not f.active:
                continue
            message = f.message
            if f.call_path and len(f.call_path) > 1:
                message += f"  [via {' -> '.join(f.call_path)}]"
            rows.append((f.rule, f.severity, f"{f.path}:{f.line}",
                         f.qualname, message))
        lines = []
        if rows:
            lines.append(format_table(
                ("rule", "severity", "where", "function", "finding"),
                rows, title="selfcheck findings"))
        suppressed = sum(1 for f in self.findings if not f.active)
        counts = self.counts()
        gate = sum(1 for f in self.findings if f.gates(strict))
        lines.append(
            f"selfcheck: {self.modules} modules, {self.functions} "
            f"functions; {sum(counts.values())} finding(s) "
            f"({suppressed} suppressed/baselined, {gate} gating"
            f"{' under --strict' if strict else ''})")
        lines.append("selfcheck: " + ("OK" if self.ok(strict) else "FAIL"))
        return "\n".join(lines)


def load_baseline(path: Path) -> list[dict]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    entries = data.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"baseline 'entries' must be a list in {path}")
    return entries


def _apply_suppressions(project: Project,
                        findings: list[Finding]) -> list[Finding]:
    """Match inline suppression comments; flag bare ones.  A comment on
    line N covers findings on N and N+1 (comment-above style)."""
    meta: list[Finding] = []
    by_module: dict[str, list[tuple[int, str, str | None]]] = {}
    for mod in project.modules.values():
        rel = _mod_relpath(project, mod)
        comments = []
        for lineno, text in enumerate(mod.source_lines, start=1):
            m = SUPPRESS_RE.search(text)
            if not m:
                continue
            comments.append((lineno, m.group("rule"), m.group("reason")))
            if not m.group("reason"):
                meta.append(Finding(
                    rule="meta-bare-suppression", path=rel, line=lineno,
                    qualname=mod.name,
                    message=(f"suppression of [{m.group('rule')}] has no "
                             f"reason; write `# selfcheck: "
                             f"ok[{m.group('rule')}] -- why`")))
        if comments:
            by_module[rel] = comments
    for f in findings:
        for lineno, rule, reason in by_module.get(f.path, ()):
            if rule == f.rule and reason and lineno in (f.line, f.line - 1):
                f.suppressed = True
                break
    return meta


def _apply_baseline(findings: list[Finding], entries: list[dict],
                    baseline_path: str) -> tuple[int, int, list[Finding]]:
    meta: list[Finding] = []
    used = 0
    stale = 0
    for idx, entry in enumerate(entries):
        rule = entry.get("rule")
        path = entry.get("path")
        qualname = entry.get("qualname")
        reason = (entry.get("reason") or "").strip()
        if not reason:
            meta.append(Finding(
                rule="meta-unjustified-baseline", path=baseline_path,
                line=idx + 1, qualname=str(rule),
                message=(f"baseline entry #{idx} ({rule} @ {path}) has no "
                         f"reason")))
        matched = False
        for f in findings:
            if f.rule != rule or f.path != path:
                continue
            if qualname and f.qualname != qualname:
                continue
            f.baselined = True
            matched = True
        if matched:
            used += 1
        else:
            stale += 1
            meta.append(Finding(
                rule="meta-stale-baseline", path=baseline_path,
                line=idx + 1, qualname=str(rule),
                message=(f"baseline entry #{idx} ({rule} @ {path}"
                         f"{' ' + qualname if qualname else ''}) matches "
                         f"no current finding; delete it")))
    return used, stale, meta


def run_selfcheck(root: str | Path,
                  baseline: str | Path | None = None) -> SelfcheckReport:
    """Run every analysis over ``root`` and fold in suppressions and the
    optional baseline file."""
    project = Project(root)
    effects = summarize_all(project)
    graph = CallGraph.build(project, effects)

    findings: list[Finding] = []
    findings.extend(check_isolation(graph))
    findings.extend(check_determinism(graph))
    findings.extend(check_schema(project))

    report = SelfcheckReport(
        root=str(project.root),
        modules=len(project.modules),
        functions=len(project.functions),
        worker_summaries=entry_write_summaries(graph)
        if worker_entries(graph) else {},
    )

    findings.extend(_apply_suppressions(project, findings))
    if baseline is not None:
        baseline = Path(baseline)
        entries = load_baseline(baseline)
        used, stale, meta = _apply_baseline(findings, entries, str(baseline))
        findings.extend(meta)
        report.baseline_path = str(baseline)
        report.baseline_used = used
        report.baseline_stale = stale

    report.findings = sorted(findings, key=Finding.sort_key)
    return report


def _mod_relpath(project: Project, mod) -> str:
    try:
        return mod.path.relative_to(project.root).as_posix()
    except ValueError:  # pragma: no cover
        return mod.path.as_posix()


__all__ = ["SelfcheckReport", "run_selfcheck", "load_baseline",
           "RULES", "ERROR"]
