"""Interprocedural call graph construction from effect summaries.

Edges come in two strengths, mirroring how much the receiver is known:

* **resolved** — direct function calls, constructor calls, and method
  calls whose receiver type was inferred (``self``, constructor-typed
  attributes, annotated parameters);
* **duck** — attribute calls on unknown receivers, expanded to every
  project class that defines the method.

The graph keeps both edge sets: reachability for the isolation and
determinism path rules uses resolved ∪ duck (over-approximate, hence
sound for "nothing bad is reachable" claims), while the sentinel-mirror
check inspects the duck *candidate sets* at each call site directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.selfcheck.effects import Effects
from repro.selfcheck.project import Project


@dataclass
class CallGraph:
    """Caller -> callee qualname edges plus per-function effects."""

    project: Project
    effects: dict[str, Effects]
    edges: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: Project, effects: dict[str, Effects]) -> "CallGraph":
        graph = cls(project=project, effects=effects)
        known = set(project.functions)
        for qual, eff in effects.items():
            out: set[str] = set()
            for call in eff.calls:
                for target in call.targets:
                    if target in known:
                        out.add(target)
            graph.edges[qual] = out
        return graph

    def entry_qualnames(self, *, functions=(), classes=(),
                        module_prefixes=(), modules=()) -> list[str]:
        """Qualnames matching any of the entry specs: bare function
        names, class names (every method), or module name prefixes."""
        out = []
        for qual, fn in self.project.functions.items():
            if fn.name in functions and fn.cls is None:
                out.append(qual)
            elif fn.cls is not None and fn.cls in classes:
                out.append(qual)
            elif module_prefixes and fn.module.startswith(tuple(module_prefixes)):
                out.append(qual)
            elif fn.module in modules:
                out.append(qual)
        return sorted(set(out))
