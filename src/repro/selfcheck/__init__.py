"""repro selfcheck — an AST-based static analyzer that proves shard
isolation, determinism, and schema integrity of the simulator itself.

Layers (each consumes only the one below):

* :mod:`~repro.selfcheck.project` — parse every module under a root,
  index classes/functions/imports, shallow attribute typing;
* :mod:`~repro.selfcheck.effects` — per-function local effect summaries
  (calls, global writes, RNG/clock/env reads, set iterations);
* :mod:`~repro.selfcheck.callgraph` / :mod:`~repro.selfcheck.worklist`
  — resolved ∪ duck call edges and the fixpoint/reachability solvers
  (the ISA dataflow worklist shape, lifted to whole functions);
* :mod:`~repro.selfcheck.isolation`, :mod:`~repro.selfcheck.determinism`,
  :mod:`~repro.selfcheck.schema` — the rule analyses;
* :mod:`~repro.selfcheck.report` — suppressions, baseline, rendering.

Run it with ``repro selfcheck [--strict] [--format json]``.
"""

from repro.selfcheck.report import SelfcheckReport, load_baseline, run_selfcheck
from repro.selfcheck.rules import RULES, Finding

__all__ = ["run_selfcheck", "SelfcheckReport", "load_baseline", "RULES",
           "Finding"]
