"""Shared registries the selfcheck analyses key off.

These name the *architectural contracts* of the simulator that the
analyses enforce — which classes hold coordinator-owned cross-SM state,
which classes are the sanctioned shard-side stand-ins, where shard-worker
execution enters, and which function names sit on serialization/output
paths.  They are matched by *name*, not identity, so the same analyzer
runs unchanged over ``src/repro`` and over the planted-violation fixture
trees under ``tests/fixtures/selfcheck/``.
"""

from __future__ import annotations

import re

#: Classes owning chip-shared (cross-SM) state.  Methods of these classes
#: must never be reachable from intra-epoch shard-worker code: every
#: cross-SM interaction has to flow through a sentinel stand-in and be
#: replayed by the coordinator at the epoch boundary.
SHARED_CLASSES = frozenset({"MemoryModel", "ProgressTracker"})

#: The sanctioned shard-side stand-ins.  A duck-typed call site that could
#: bind a shared class is legal exactly when a sentinel class implements
#: the same method — that is the injection seam (the SM's L1 talks to
#: whatever "memory model" it was constructed with).
SENTINEL_CLASSES = frozenset({"DeferredMemory", "ShardGmem"})

#: Entry points of intra-epoch shard-worker execution, by (class, method)
#: or bare function name.  ``_worker_main`` is the fork-backend loop;
#: ``_Shard`` methods are driven directly by the inline backend.
WORKER_ENTRY_FUNCTIONS = frozenset({"_worker_main"})
WORKER_ENTRY_CLASSES = frozenset({"_Shard"})
#: Entry names only count inside the parallel-engine module itself —
#: the sweep orchestrator has its own (process-isolated) ``_worker_main``
#: that legitimately runs whole simulations.
WORKER_ENTRY_MODULE_LEAF = "parallel"

#: Module prefixes considered "simulator paths" for the determinism lint:
#: wall-clock and environment reads reachable from these are errors
#: (results must be a pure function of config + seed).  Operational
#: layers (orchestrator, serve, store) legitimately read clocks.
SIM_PATH_PREFIXES = ("sim.", "core.", "isa.")
SIM_PATH_MODULES = frozenset({"sim", "core", "isa"})

#: Function names that root serialization / human-readable output.  Any
#: code reachable *from* one of these feeds bytes that are journaled,
#: stored, diffed, or rendered — unordered-set iteration there is a
#: nondeterminism leak even when every simulator value is exact.
OUTPUT_ROOT_PATTERN = re.compile(
    r"^(to_dict|to_json|to_summary|payload|summary|fingerprint|"
    r"spec_fingerprint|cell_fingerprint|disassemble|"
    r".*_report|.*_table|format_.*|write_.*|render.*|diagnostic_dump)$"
)

#: Module-global stdlib RNG entry points (draw from the interpreter-wide
#: generator; results would depend on import order and test interleaving).
GLOBAL_STDLIB_RNG = frozenset({
    "random", "randint", "randrange", "choice", "choices", "uniform",
    "shuffle", "sample", "seed", "gauss", "expovariate", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "lognormvariate",
    "normalvariate", "weibullvariate", "getrandbits", "randbytes",
})

#: Sanctioned entry points on ``numpy.random`` — everything else is the
#: legacy global generator.
NUMPY_RNG_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence"})

#: Wall-clock reads (``module attr`` pairs).
WALLCLOCK_CALLS = frozenset({
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "time_ns"), ("time", "monotonic_ns"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
})

#: Methods that mutate their receiver in place — calling one of these on
#: a module-global name counts as a global write.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "discard", "remove",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
    "appendleft", "extendleft",
})

#: Method names so overwhelmingly used on stdlib containers/strings/files
#: that duck-resolving them to same-named project methods would drown the
#: call graph in false edges (``pending.get(...)``, ``handle.write`` is
#: kept — the memory-model seam needs it).  Calls through *typed*
#: receivers still resolve normally.
DUCK_EXCLUDE = frozenset({
    "get", "items", "keys", "values", "setdefault", "append", "extend",
    "insert", "pop", "popitem", "clear", "sort", "reverse", "remove",
    "discard", "add", "update", "copy", "join", "split", "rsplit",
    "strip", "rstrip", "lstrip", "startswith", "endswith", "format",
    "encode", "decode", "lower", "upper", "count", "index", "replace",
    "open", "exists", "mkdir", "resolve", "relative_to", "with_suffix",
    "flush", "close", "fileno", "readline", "splitlines", "tolist",
})

#: Builtins whose argument is consumed order-insensitively, so a
#: set-typed argument is safe.
ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "len", "min", "max", "any", "all", "frozenset", "set",
    "bool",
})
