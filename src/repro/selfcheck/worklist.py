"""Worklist fixpoint solver over the interprocedural call graph.

The same shape as :func:`repro.isa.analysis.dataflow.solve`, lifted from
basic blocks to whole functions: a :class:`SummaryProblem` supplies the
lattice (``init`` / ``meet``) and the transfer (``local`` effects joined
with callee summaries), and :func:`solve_summaries` iterates to a
fixpoint over the call-graph edges.  Used by the analyses to propagate
per-function effect summaries bottom-up (what can this call *eventually*
do?) without re-walking any AST.
"""

from __future__ import annotations


class SummaryProblem:
    """One bottom-up summary analysis over the call graph."""

    def init(self, qualname: str):
        """The summary before any propagation (usually the local facts)."""
        raise NotImplementedError

    def meet(self, a, b):
        """Join a callee's summary into a caller's."""
        raise NotImplementedError


def solve_summaries(edges: dict[str, set[str]], problem: SummaryProblem) -> dict:
    """Fixpoint of ``summary(f) = init(f) ⊔ ⨆ summary(callee)``.

    ``edges`` maps caller qualname -> callee qualnames.  Facts must be
    immutable values with ``==`` (frozensets work well); ``meet`` returns
    a new fact.  Recursive cycles converge because the lattice only grows
    and ``meet`` is monotone — the identical argument to the ISA dataflow
    solver's termination.
    """
    summaries = {qual: problem.init(qual) for qual in edges}
    callers: dict[str, set[str]] = {qual: set() for qual in edges}
    for caller, callees in edges.items():
        for callee in callees:
            if callee in callers:
                callers[callee].add(caller)
    work = list(edges)
    in_work = set(work)
    iterations = 0
    limit = max(64, 16 * len(edges))
    while work:
        iterations += 1
        if iterations > limit * 8:  # pragma: no cover - safety net
            raise RuntimeError("summary solve did not converge")
        qual = work.pop(0)
        in_work.discard(qual)
        fact = problem.init(qual)
        for callee in edges.get(qual, ()):
            callee_fact = summaries.get(callee)
            if callee_fact is not None:
                fact = problem.meet(fact, callee_fact)
        if fact != summaries[qual]:
            summaries[qual] = fact
            for caller in callers.get(qual, ()):
                if caller not in in_work:
                    work.append(caller)
                    in_work.add(caller)
    return summaries


def reachable_with_paths(edges: dict[str, set[str]],
                         entries) -> dict[str, list[str]]:
    """BFS closure of ``entries`` over ``edges``; maps every reachable
    qualname to one shortest call path ``[entry, …, qualname]`` — the
    evidence chain reported with path-sensitive findings."""
    paths: dict[str, list[str]] = {}
    queue = []
    for entry in entries:
        if entry in edges and entry not in paths:
            paths[entry] = [entry]
            queue.append(entry)
    while queue:
        qual = queue.pop(0)
        base = paths[qual]
        for callee in sorted(edges.get(qual, ())):
            if callee not in paths:
                paths[callee] = base + [callee]
                queue.append(callee)
    return paths
