"""Per-function effect summaries extracted from the AST.

For every function in a :class:`~repro.selfcheck.project.Project`,
:func:`summarize` produces an :class:`Effects` record: the function's
call sites (resolved where receiver types are known, duck-typed
candidate sets otherwise), its writes to module-global and class-level
state, and the determinism-relevant local facts (global-RNG calls,
wall-clock and environment reads, unordered-set iterations, float
accumulation over unordered iterations).

These are *local* summaries; the analyses propagate them over the call
graph with the worklist solver (:mod:`repro.selfcheck.worklist`), the
same fixpoint shape the ISA-level passes use in
``repro/isa/analysis/dataflow.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.selfcheck.project import (FunctionInfo, ModuleInfo, Project,
                                     annotation_name, is_set_expr)
from repro.selfcheck.registry import (DUCK_EXCLUDE, GLOBAL_STDLIB_RNG,
                                      MUTATING_METHODS, NUMPY_RNG_ALLOWED,
                                      ORDER_FREE_CONSUMERS, WALLCLOCK_CALLS)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    lineno: int
    #: "direct" (resolved module function), "method" (receiver type
    #: known), "duck" (receiver unknown: candidates by method name),
    #: "init" (class instantiation)
    kind: str
    #: resolved target qualnames ("sim.smcore.SMCore.step"); for duck
    #: calls this is every project class method with the name
    targets: tuple[str, ...]
    #: the attribute/function name at the call site
    name: str
    #: candidate receiver class *names* for method/duck calls
    receiver_classes: tuple[str, ...] = ()


@dataclass(frozen=True)
class Site:
    """One effect occurrence: line + human-readable description."""

    lineno: int
    detail: str


@dataclass
class Effects:
    """Everything one function does that the analyses care about."""

    fn: FunctionInfo
    calls: list[CallSite] = field(default_factory=list)
    global_writes: list[Site] = field(default_factory=list)
    classvar_writes: list[Site] = field(default_factory=list)
    instantiates: list[CallSite] = field(default_factory=list)
    rng: list[Site] = field(default_factory=list)
    wallclock: list[Site] = field(default_factory=list)
    env: list[Site] = field(default_factory=list)
    set_iters: list[Site] = field(default_factory=list)
    float_accum: list[Site] = field(default_factory=list)


class _EffectVisitor(ast.NodeVisitor):
    """Single pass over one function body (nested defs included: a
    closure's effects belong to the function that creates it)."""

    def __init__(self, project: Project, mod: ModuleInfo, fn: FunctionInfo):
        self.project = project
        self.mod = mod
        self.fn = fn
        self.cls = mod.classes.get(fn.cls) if fn.cls else None
        self.out = Effects(fn=fn)
        #: local name -> candidate class name (shallow flow)
        self.local_types: dict[str, str] = {}
        #: local names currently bound to set values
        self.set_locals: set[str] = set()
        self.declared_global: set[str] = set()
        #: every name bound locally (params, assignments, loop targets) —
        #: a local shadowing a module-global name is not a global write
        self.local_names: set[str] = set()
        args = fn.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            self.local_names.add(arg.arg)
            ann = annotation_name(arg.annotation)
            if ann:
                self.local_types[arg.arg] = ann

    # -- helpers -------------------------------------------------------------

    def _origin(self, name: str) -> str | None:
        """Dotted import origin of a top-level name, if imported."""
        return self.mod.imports.get(name)

    def _is_set(self, node: ast.expr) -> bool:
        set_attrs = self.cls.set_attrs if self.cls else set()
        return is_set_expr(node, self.set_locals, set_attrs)

    def _receiver_classes(self, node: ast.expr) -> tuple[str, ...]:
        """Candidate class names for a call receiver expression."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return (self.cls.name,)
            cand = self.local_types.get(node.id)
            if cand:
                return (cand,)
            origin = self._origin(node.id)
            if origin:
                leaf = origin.rsplit(".", 1)[-1]
                if leaf in self.project.classes_by_name:
                    return (leaf,)  # ClassName.method(...) style
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base, attr = node.value.id, node.attr
            if base == "self" and self.cls is not None:
                types = self.cls.attr_types.get(attr)
                if types:
                    return tuple(sorted(types))
            else:
                cand = self.local_types.get(base)
                if cand:
                    cls = self._class_by_name(cand)
                    if cls is not None:
                        types = cls.attr_types.get(attr)
                        if types:
                            return tuple(sorted(types))
        return ()

    def _class_by_name(self, name: str):
        cands = self.project.classes_by_name.get(name)
        return cands[0] if cands else None

    def _resolve_method(self, cls_name: str, method: str) -> str | None:
        """Walk the project-visible MRO of ``cls_name`` for ``method``."""
        seen = set()
        work = [cls_name]
        while work:
            name = work.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self._class_by_name(name)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method].qualname
            work.extend(cls.bases)
        return None

    # -- statements ----------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.declared_global.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_write_target(target, node.lineno)
            if isinstance(target, ast.Name):
                if self._is_set(node.value):
                    self.set_locals.add(target.id)
                else:
                    self.set_locals.discard(target.id)
                cand = self._value_class(node.value)
                if cand:
                    self.local_types[target.id] = cand
                elif target.id in self.local_types:
                    del self.local_types[target.id]
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note_write_target(node.target, node.lineno)
        if isinstance(node.target, ast.Name):
            ann = annotation_name(node.annotation)
            if ann in ("set", "frozenset") or (
                    node.value is not None and self._is_set(node.value)):
                self.set_locals.add(node.target.id)
            if ann and ann in self.project.classes_by_name:
                self.local_types[node.target.id] = ann
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_write_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._note_write_target(target, node.lineno)
        self.generic_visit(node)

    def _value_class(self, value: ast.expr) -> str | None:
        if isinstance(value, ast.Call):
            name = None
            if isinstance(value.func, ast.Name):
                name = value.func.id
            elif isinstance(value.func, ast.Attribute):
                name = value.func.attr
            if name and name in self.project.classes_by_name:
                return name
        elif isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            # ``sm = core.sm`` — propagate a unique inferred attr type.
            base = value.value.id
            owner = None
            if base == "self" and self.cls is not None:
                owner = self.cls
            elif base in self.local_types:
                owner = self._class_by_name(self.local_types[base])
            if owner is not None:
                types = owner.attr_types.get(value.attr)
                if types and len(types) == 1:
                    return next(iter(types))
        return None

    def _note_write_target(self, target: ast.expr, lineno: int) -> None:
        # Unpacking: recurse into tuple/list targets.
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._note_write_target(element, lineno)
            return
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self.out.global_writes.append(
                    Site(lineno, f"assigns module global {target.id!r}"))
            else:
                self.local_names.add(target.id)
            return
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute):
            owner = base.value
            if isinstance(owner, ast.Name) and owner.id != "self":
                origin = self._origin(owner.id)
                if origin and owner.id not in self.local_names:
                    leaf = origin.rsplit(".", 1)[-1]
                    if leaf in self.project.classes_by_name:
                        self.out.classvar_writes.append(Site(
                            lineno,
                            f"writes class attribute {leaf}.{base.attr}"))
                elif (owner.id in self.mod.classes
                        and owner.id not in self.local_names):
                    self.out.classvar_writes.append(Site(
                        lineno,
                        f"writes class attribute {owner.id}.{base.attr}"))
            return
        if isinstance(base, ast.Name):
            name = base.id
            if self._is_module_global(name):
                self.out.global_writes.append(
                    Site(lineno, f"mutates module global {name!r}"))

    def _is_module_global(self, name: str) -> bool:
        """Does ``name`` refer to module-global state in this scope?"""
        if name in self.declared_global:
            return True
        return (name in self.mod.global_names
                and name not in self.local_names)

    # -- iteration / comprehension -------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._bind_target(node.target)
        self._check_iter(node.iter)
        if self._is_set(node.iter):
            for sub in ast.walk(node):
                if (isinstance(sub, ast.AugAssign)
                        and isinstance(sub.op, ast.Add)):
                    self.out.float_accum.append(Site(
                        sub.lineno,
                        "accumulation inside a loop over an unordered set"))
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._bind_target(node.target)
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars)
        self.generic_visit(node)

    def _bind_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element)

    def _check_iter(self, iter_node: ast.expr) -> None:
        if self._is_set(iter_node):
            self.out.set_iters.append(Site(
                iter_node.lineno,
                f"iterates an unordered set ({ast.unparse(iter_node)})"))

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._classify_call(node)
        self.generic_visit(node)

    def _classify_call(self, node: ast.Call) -> None:
        func = node.func
        lineno = node.lineno
        if isinstance(func, ast.Name):
            name = func.id
            if name in ORDER_FREE_CONSUMERS:
                pass
            elif name in ("list", "tuple", "iter", "enumerate"):
                for arg in node.args[:1]:
                    self._check_iter(arg)
            elif name == "sum":
                for arg in node.args[:1]:
                    if self._is_set(arg):
                        self.out.float_accum.append(Site(
                            lineno, f"sum() over an unordered set "
                                    f"({ast.unparse(arg)})"))
            origin = self._origin(name)
            if origin:
                self._check_imported_call(origin, lineno)
                leaf = origin.rsplit(".", 1)[-1]
                if leaf in self.project.classes_by_name:
                    self._note_init(leaf, lineno)
                    return
                target = self._project_function_from_origin(origin)
                if target:
                    self.out.calls.append(CallSite(
                        lineno, "direct", (target,), name))
                    return
            if name in self.mod.classes:
                self._note_init(name, lineno)
                return
            if name in self.mod.functions:
                self.out.calls.append(CallSite(
                    lineno, "direct",
                    (self.mod.functions[name].qualname,), name))
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        base = func.value
        # ``super().m(...)`` — resolve through the class's own bases; never
        # degrade to a duck call (that would fan out to every same-named
        # method in the project).
        if (isinstance(base, ast.Call) and isinstance(base.func, ast.Name)
                and base.func.id == "super"):
            if self.cls is not None and self.cls.bases:
                targets = tuple(
                    t for t in (self._resolve_method(b, method)
                                for b in self.cls.bases) if t)
                if targets:
                    self.out.calls.append(CallSite(
                        lineno, "method", targets, method,
                        tuple(self.cls.bases)))
            return
        # module-qualified calls: rng / clock / env / project functions
        if isinstance(base, ast.Name):
            origin = self._origin(base.id)
            if origin is not None and base.id not in self.local_types:
                self._check_module_attr_call(origin, method, lineno, node)
                target = self._project_function_from_origin(
                    f"{origin}.{method}")
                if target:
                    self.out.calls.append(CallSite(
                        lineno, "direct", (target,), method))
                    return
        if (isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name)
                and self._origin(base.value.id) == "numpy"
                and base.attr == "random"):
            if method not in NUMPY_RNG_ALLOWED:
                self.out.rng.append(Site(
                    lineno, f"legacy numpy global RNG np.random.{method}()"))
            return
        if method in MUTATING_METHODS and isinstance(base, ast.Name):
            if self._is_module_global(base.id):
                self.out.global_writes.append(Site(
                    lineno, f"mutates module global {base.id!r} "
                            f"via .{method}()"))
        receivers = self._receiver_classes(base)
        if receivers:
            targets = []
            for cls_name in receivers:
                resolved = self._resolve_method(cls_name, method)
                if resolved:
                    targets.append(resolved)
            if targets:
                self.out.calls.append(CallSite(
                    lineno, "method", tuple(targets), method, receivers))
                return
        # Duck call: every project method with this name is a candidate.
        # Dunders and stdlib-container method names are excluded — they
        # would connect unrelated classes through ``__init__``/``get``.
        if method in DUCK_EXCLUDE or method.startswith("__"):
            return
        cands = self.project.methods_by_name.get(method, ())
        if cands:
            self.out.calls.append(CallSite(
                lineno, "duck",
                tuple(sorted(m.qualname for m in cands)), method,
                tuple(sorted({m.cls for m in cands if m.cls}))))

    def _note_init(self, cls_name: str, lineno: int) -> None:
        init = self._resolve_method(cls_name, "__init__")
        targets = (init,) if init else ()
        site = CallSite(lineno, "init", targets, cls_name, (cls_name,))
        self.out.instantiates.append(site)
        if targets:
            self.out.calls.append(site)

    def _project_function_from_origin(self, origin: str) -> str | None:
        """Map a dotted import origin onto a project function qualname."""
        parts = origin.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:split])
            leaf = parts[split:]
            for candidate in self._project_module_names(mod_name):
                mod = self.project.modules.get(candidate)
                if mod is None:
                    continue
                if len(leaf) == 1 and leaf[0] in mod.functions:
                    return mod.functions[leaf[0]].qualname
        return None

    def _project_module_names(self, dotted: str):
        """The project uses root-relative names; imports use absolute
        ones (``repro.sim.memsys``).  Try progressively stripped
        prefixes so both resolve."""
        parts = dotted.split(".")
        for start in range(len(parts)):
            yield ".".join(parts[start:])

    def _check_imported_call(self, origin: str, lineno: int) -> None:
        """``from random import shuffle; shuffle(...)`` style."""
        parts = origin.split(".")
        if len(parts) == 2 and parts[0] == "random" and parts[1] in GLOBAL_STDLIB_RNG:
            self.out.rng.append(Site(
                lineno, f"module-global RNG random.{parts[1]}()"))
        if tuple(parts[-2:]) in WALLCLOCK_CALLS:
            self.out.wallclock.append(Site(
                lineno, f"wall-clock read {'.'.join(parts[-2:])}()"))
        if parts[-1] == "getenv" and parts[0] == "os":
            self.out.env.append(Site(lineno, "environment read os.getenv()"))

    def _check_module_attr_call(self, origin: str, method: str,
                                lineno: int, node: ast.Call) -> None:
        root = origin.split(".")[0]
        if origin == "random" and method in GLOBAL_STDLIB_RNG:
            self.out.rng.append(Site(
                lineno, f"module-global RNG random.{method}()"))
        elif (root, method) in WALLCLOCK_CALLS or (
                origin in ("time", "datetime", "datetime.datetime")
                and (origin.split(".")[-1], method) in WALLCLOCK_CALLS):
            self.out.wallclock.append(Site(
                lineno, f"wall-clock read {origin}.{method}()"))
        elif origin == "os" and method == "getenv":
            self.out.env.append(Site(lineno, "environment read os.getenv()"))

    # -- os.environ reads ----------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (node.attr == "environ" and isinstance(node.value, ast.Name)
                and self._origin(node.value.id) == "os"):
            self.out.env.append(Site(
                node.lineno, "environment read os.environ"))
        self.generic_visit(node)


def summarize(project: Project, fn: FunctionInfo) -> Effects:
    """Local effect summary for one function."""
    mod = project.modules[fn.module]
    visitor = _EffectVisitor(project, mod, fn)
    node = fn.node
    for stmt in node.body:
        visitor.visit(stmt)
    return visitor.out


def summarize_all(project: Project) -> dict[str, Effects]:
    """Effect summaries for every function in the project."""
    return {qual: summarize(project, fn)
            for qual, fn in project.functions.items()}
