"""Shard-isolation race detector.

The parallel engine's correctness argument (see ``ARCHITECTURE.md``) is
an induction over epochs: if every shard worker touches only shard-local
state during an epoch, and every cross-SM interaction is *recorded* by a
sentinel (``DeferredMemory`` / ``ShardGmem``) and replayed by the
coordinator at the epoch boundary, then the fork and inline backends —
and any shard count — produce bit-identical results.  This analysis
proves the inductive step statically:

* ``iso-global-write`` — code reachable from a shard-worker entry writes
  module-global or class-level state;
* ``iso-shared-call`` — worker-reachable code calls or instantiates a
  coordinator-shared class (``MemoryModel``, ``ProgressTracker``) through
  a *typed* receiver;
* ``iso-unmirrored-call`` — a worker-reachable duck-typed call site could
  bind a shared class and **no sentinel implements the method**.  This is
  the teeth of the rule: adding ``MemoryModel.prefetch`` and calling it
  from the L1 without mirroring it on ``DeferredMemory`` collapses the
  candidate set to shared-only and fails CI.

Reachability is the bottom-up closure of worker entries over resolved ∪
duck call edges — over-approximate, hence sound for the "nothing bad is
reachable" claim.  Each finding carries its shortest call path from an
entry as evidence.
"""

from __future__ import annotations

from repro.selfcheck.callgraph import CallGraph
from repro.selfcheck.registry import (SENTINEL_CLASSES, SHARED_CLASSES,
                                      WORKER_ENTRY_CLASSES,
                                      WORKER_ENTRY_FUNCTIONS,
                                      WORKER_ENTRY_MODULE_LEAF)
from repro.selfcheck.rules import Finding
from repro.selfcheck.worklist import (SummaryProblem, reachable_with_paths,
                                      solve_summaries)


class _WriteFootprint(SummaryProblem):
    """Transitive set of (path, line) state-write sites per function —
    the worklist instance backing the per-entry summaries in the JSON
    report (what could this worker entry *eventually* mutate?)."""

    def __init__(self, graph: CallGraph):
        self.graph = graph

    def init(self, qualname: str) -> frozenset:
        eff = self.graph.effects.get(qualname)
        if eff is None:
            return frozenset()
        sites = [(eff.fn.path, s.lineno)
                 for s in eff.global_writes + eff.classvar_writes]
        return frozenset(sites)

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b


def worker_entries(graph: CallGraph) -> list[str]:
    entries = graph.entry_qualnames(functions=WORKER_ENTRY_FUNCTIONS,
                                    classes=WORKER_ENTRY_CLASSES)
    return [qual for qual in entries
            if (graph.project.functions[qual].module.rsplit(".", 1)[-1]
                == WORKER_ENTRY_MODULE_LEAF)]


def _worker_edges(graph: CallGraph) -> dict[str, set[str]]:
    """Call edges for the worker closure: never traverse *into* a
    shared-class method body.  A typed call to one is already reported at
    the call site, and a sanctioned duck call binds the sentinel at
    runtime, so the shared candidate's body is unreachable in a worker."""
    shared_methods = {
        qual for qual, fn in graph.project.functions.items()
        if fn.cls in SHARED_CLASSES}
    return {qual: targets - shared_methods
            for qual, targets in graph.edges.items()}


def entry_write_summaries(graph: CallGraph) -> dict[str, int]:
    """Per worker entry: how many distinct state-write sites are
    transitively reachable (0 everywhere on a clean tree)."""
    summaries = solve_summaries(_worker_edges(graph), _WriteFootprint(graph))
    return {entry: len(summaries.get(entry, frozenset()))
            for entry in worker_entries(graph)}


def check_isolation(graph: CallGraph) -> list[Finding]:
    findings: list[Finding] = []
    paths = reachable_with_paths(_worker_edges(graph), worker_entries(graph))
    for qual in sorted(paths):
        eff = graph.effects.get(qual)
        if eff is None:
            continue
        rel = _relpath(graph, qual)
        chain = paths[qual]
        for site in eff.global_writes + eff.classvar_writes:
            findings.append(Finding(
                rule="iso-global-write", path=rel, line=site.lineno,
                qualname=qual,
                message=f"shard-worker-reachable code {site.detail}",
                call_path=chain))
        for call in eff.instantiates:
            shared = set(call.receiver_classes) & SHARED_CLASSES
            if shared:
                findings.append(Finding(
                    rule="iso-shared-call", path=rel, line=call.lineno,
                    qualname=qual,
                    message=(f"worker-reachable code instantiates shared "
                             f"class {sorted(shared)[0]}"),
                    call_path=chain))
        for call in eff.calls:
            if call.kind == "method":
                shared = set(call.receiver_classes) & SHARED_CLASSES
                if shared:
                    findings.append(Finding(
                        rule="iso-shared-call", path=rel, line=call.lineno,
                        qualname=qual,
                        message=(f"worker-reachable code calls "
                                 f"{sorted(shared)[0]}.{call.name}() on a "
                                 f"typed receiver"),
                        call_path=chain))
            elif call.kind == "duck":
                cands = set(call.receiver_classes)
                if cands & SHARED_CLASSES and not cands & SENTINEL_CLASSES:
                    shared = sorted(cands & SHARED_CLASSES)[0]
                    findings.append(Finding(
                        rule="iso-unmirrored-call", path=rel,
                        line=call.lineno, qualname=qual,
                        message=(f".{call.name}() could bind shared class "
                                 f"{shared} and no sentinel class "
                                 f"implements {call.name}(); mirror it on "
                                 f"DeferredMemory/ShardGmem"),
                        call_path=chain))
    return findings


def _relpath(graph: CallGraph, qual: str) -> str:
    fn = graph.project.functions[qual]
    try:
        return fn.path.relative_to(graph.project.root).as_posix()
    except ValueError:  # pragma: no cover - fixture roots are self-rooted
        return fn.path.as_posix()
