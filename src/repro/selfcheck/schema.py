"""Serialization schema-drift checker.

Every ``to_dict``/``from_dict`` (and ``to_json``/``from_json``) pair is
checked for field completeness by comparing the keys the serializer
*produces* (dict-literal keys, ``x["k"] = …`` stores, or every dataclass
field when ``dataclasses.asdict`` is used) against the keys the
deserializer *consumes*:

* a hard ``data["k"]`` read of a never-produced key is
  ``schema-pair-drift`` (round-trip raises ``KeyError``);
* a tolerant ``data.get("k")`` read of a never-produced key is
  ``schema-orphan-read`` (dead key or silently dropped field);
* a dataclass field missing from a literal-only serializer payload is
  ``schema-field-coverage`` (silently dropped on round-trip).

Deserializers that consume via ``cls(**…)`` splats accept any produced
key, so they are exempt from pair-drift.  Calls to same-module
``*from_*`` helpers are inlined one level, which is how
``JournalEntry.from_json → record_from_dict`` reads are attributed.

On top of the pairwise checks, the **schema-v1 goldens** pin the exact
key sets of the durable artifacts — ``SMStats``/``SimStats`` fields,
``JournalEntry.to_json`` keys, ``StoreEntry.payload`` keys, and the
``SCHEMA_VERSION`` constants.  Changing any of those without bumping the
version (and these goldens) is ``schema-golden-drift``: old journals and
store entries on disk would stop round-tripping.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.selfcheck.project import ClassInfo, ModuleInfo, Project
from repro.selfcheck.rules import Finding

SERIALIZER_NAMES = ("to_dict", "to_json", "payload")
DESERIALIZER_NAMES = ("from_dict", "from_json")

_PAIR_SUFFIX = re.compile(r"^(?P<stem>.+)_to_(?P<fmt>dict|json)$")

#: Pinned schema-v1 shapes of the durable on-disk artifacts.  Keyed by
#: (module, target); values are exact sorted key/field lists.  Bump
#: SCHEMA_VERSION and these lists together, consciously.
GOLDEN_FIELDS: dict[tuple[str, str], tuple[str, ...]] = {
    ("sim.stats", "SMStats"): (
        "active_cta_samples", "ctas_completed", "cycles",
        "global_transactions", "idle_cycles_alu", "idle_cycles_barrier",
        "idle_cycles_empty", "idle_cycles_mem", "idle_cycles_struct",
        "idle_cycles_swap", "instructions", "instructions_by_class",
        "issue_slots", "issued_slots", "l1_accesses", "l1_hits",
        "occupancy_samples", "resident_cta_samples",
        "resident_warp_samples", "schedulable_warp_samples",
        "smem_accesses", "smem_bank_conflict_passes", "swap_busy_cycles",
        "swaps", "thread_instructions",
    ),
    ("sim.stats", "SimStats"): (
        "ctas_launched", "cycles", "dram_requests", "instructions",
        "l2_accesses", "l2_hits", "sm_stats", "thread_instructions",
    ),
    ("analysis.journal", "JournalEntry.to_json"): (
        "arch", "attempts", "benchmark", "config", "dump_path",
        "elapsed_s", "error", "fingerprint", "retried", "scale", "seed",
        "stats", "status", "v",
    ),
    ("store.cas", "StoreEntry.payload"): (
        "attempts", "created_at", "elapsed_s", "fingerprint", "record",
        "scale", "seed",
    ),
    ("isa.analysis.bounds", "TripBound.to_dict"): (
        "exact", "hi", "lo", "pc", "source",
    ),
    ("isa.analysis.bounds", "KernelBound.to_dict"): (
        "arch", "buckets", "ctas", "floors", "hi", "kernel", "lo",
        "mode", "tightness", "trips", "warps",
    ),
    ("isa.analysis.compose", "KernelFootprint.to_dict"): (
        "arch", "bandwidth_class", "bound", "hi", "kernel", "lo",
        "mem_fraction", "mode", "mshr_per_cta", "regs_per_cta",
        "smem_per_cta", "solo_ctas_per_sm", "threads_per_cta",
        "warps_per_cta",
    ),
    ("isa.analysis.compose", "PairVerdict.to_dict"): (
        "a", "arch", "b", "ctas_a", "ctas_b", "mode", "reasons",
        "slowdown_a", "slowdown_b", "verdict",
    ),
}

#: module -> expected SCHEMA_VERSION constant value.
GOLDEN_SCHEMA_VERSION: dict[str, int] = {
    "analysis.journal": 1,
    "store.cas": 1,
}


@dataclass
class _Produced:
    """Keys a serializer emits."""

    keys: dict[str, int] = field(default_factory=dict)  # key -> line
    all_fields: bool = False  # dataclasses.asdict(...) seen


@dataclass
class _Consumed:
    """Keys a deserializer reads."""

    hard: dict[str, int] = field(default_factory=dict)
    tolerant: dict[str, int] = field(default_factory=dict)
    splat: bool = False  # cls(**...) — accepts any produced key


def _produced(fn_node: ast.AST) -> _Produced:
    out = _Produced()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    out.keys.setdefault(key.value, key.lineno)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                out.keys.setdefault(sl.value, node.lineno)
        elif isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name == "asdict":
                out.all_fields = True
    return out


def _consumed(fn_node: ast.AST, mod: ModuleInfo,
              depth: int = 1) -> _Consumed:
    out = _Consumed()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                out.hard.setdefault(sl.value, node.lineno)
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get" and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                out.tolerant.setdefault(node.args[0].value, node.lineno)
            if any(kw.arg is None for kw in node.keywords):
                out.splat = True
            # Inline same-module *from_* helpers one level deep.
            if (depth > 0 and isinstance(node.func, ast.Name)
                    and "from_" in node.func.id
                    and node.func.id in mod.functions):
                inner = _consumed(mod.functions[node.func.id].node, mod,
                                  depth=depth - 1)
                for key, line in inner.hard.items():
                    out.hard.setdefault(key, line)
                for key, line in inner.tolerant.items():
                    out.tolerant.setdefault(key, line)
                out.splat = out.splat or inner.splat
    return out


def _pairs(mod: ModuleInfo):
    """(owner_qualname, serializer FunctionInfo, deserializer
    FunctionInfo-or-None, dataclass fields-or-None) per serializer."""
    out = []
    for cls in mod.classes.values():
        ser = next((cls.methods[n] for n in SERIALIZER_NAMES
                    if n in cls.methods), None)
        if ser is None:
            continue
        deser = next((cls.methods[n] for n in DESERIALIZER_NAMES
                      if n in cls.methods), None)
        fields = tuple(cls.fields) if cls.is_dataclass else None
        out.append((cls.qualname, ser, deser, fields, cls))
    for name, fn in mod.functions.items():
        m = _PAIR_SUFFIX.match(name)
        if not m:
            continue
        counterpart = f"{m.group('stem')}_from_{m.group('fmt')}"
        deser = mod.functions.get(counterpart)
        out.append((fn.qualname, fn, deser, None, None))
    return out


def check_schema(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple] = set()

    def emit(rule, mod, line, qualname, message):
        key = (rule, mod.name, line, message)
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(
            rule=rule, path=_relpath(project, mod), line=line,
            qualname=qualname, message=message))

    for mod in project.modules.values():
        for qualname, ser, deser, fields, cls in _pairs(mod):
            produced = _produced(ser.node)
            known = set(produced.keys)
            if produced.all_fields and fields is not None:
                known |= set(fields)
            if deser is not None:
                consumed = _consumed(deser.node, mod)
                unknowable = produced.all_fields and fields is None
                if not (consumed.splat or unknowable):
                    for key, line in sorted(consumed.hard.items()):
                        if key not in known:
                            emit("schema-pair-drift", mod, line,
                                 deser.qualname,
                                 f"{deser.name}() hard-reads key {key!r} "
                                 f"that {ser.name}() never produces")
                if not unknowable:
                    for key, line in sorted(consumed.tolerant.items()):
                        if key not in known:
                            emit("schema-orphan-read", mod, line,
                                 deser.qualname,
                                 f"{deser.name}() reads key {key!r} via "
                                 f".get() but {ser.name}() never "
                                 f"produces it")
            if (fields is not None and not produced.all_fields
                    and produced.keys):
                for fld in fields:
                    if fld not in produced.keys:
                        emit("schema-field-coverage", mod, ser.lineno,
                             ser.qualname,
                             f"dataclass field {fld!r} missing from "
                             f"{ser.name}() payload")

    findings.extend(_check_goldens(project))
    return findings


def _check_goldens(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for (mod_name, target), golden in sorted(GOLDEN_FIELDS.items()):
        mod = project.modules.get(mod_name)
        if mod is None:  # fixture trees don't carry the real modules
            continue
        if "." in target:
            cls_name, method = target.split(".")
            cls = mod.classes.get(cls_name)
            if cls is None or method not in cls.methods:
                continue
            fn = cls.methods[method]
            actual = sorted(_produced(fn.node).keys)
            line, qualname = fn.lineno, fn.qualname
            what = f"{target}() keys"
        else:
            cls = mod.classes.get(target)
            if cls is None:
                continue
            actual = sorted(cls.fields)
            line, qualname = cls.node.lineno, cls.qualname
            what = f"{target} fields"
        missing = sorted(set(golden) - set(actual))
        extra = sorted(set(actual) - set(golden))
        if missing or extra:
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"added {extra}")
            findings.append(Finding(
                rule="schema-golden-drift", path=_relpath(project, mod),
                line=line, qualname=qualname,
                message=(f"{what} drifted from the schema-v1 golden: "
                         f"{'; '.join(detail)} — bump SCHEMA_VERSION and "
                         f"the goldens together")))
    for mod_name, expected in sorted(GOLDEN_SCHEMA_VERSION.items()):
        mod = project.modules.get(mod_name)
        if mod is None:
            continue
        actual = _schema_version(mod)
        if actual is not None and actual != expected:
            findings.append(Finding(
                rule="schema-golden-drift", path=_relpath(project, mod),
                line=1, qualname=mod.name,
                message=(f"SCHEMA_VERSION is {actual}, golden pins "
                         f"{expected}; update the selfcheck goldens with "
                         f"the version bump")))
    return findings


def _schema_version(mod: ModuleInfo):
    for node in mod.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id == "SCHEMA_VERSION"
                        and isinstance(node.value, ast.Constant)):
                    return node.value.value
    return None


def _relpath(project: Project, mod: ModuleInfo) -> str:
    try:
        return mod.path.relative_to(project.root).as_posix()
    except ValueError:  # pragma: no cover
        return mod.path.as_posix()
