"""Determinism lint: same config + same seed must mean same bytes.

Four detectors, two of them path-sensitive:

* ``det-global-rng`` — any use of the module-global stdlib RNG or the
  legacy ``np.random`` global generator, anywhere in the tree.  Global
  RNG draws depend on import order and test interleaving, so this is
  unconditional (this subsumes the old regex audit in
  ``tests/test_rng_audit.py``).
* ``det-wallclock`` / ``det-env-read`` — wall-clock or environment reads
  in code reachable from simulator modules (``sim.*``/``core.*``/
  ``isa.*``).  Operational layers (orchestrator, serve, store) read
  clocks legitimately; the simulator must not.
* ``det-set-iter`` — iteration over an unordered ``set`` inside the
  downward closure of serialization/output roots (``to_dict``,
  ``*_report``, ``write_*``, …).  Set iteration order varies with
  ``PYTHONHASHSEED`` for str elements, so bytes on these paths would
  differ run to run.
* ``det-float-accum`` (warning) — ``+=`` / ``sum()`` over an unordered
  iteration: the float rounding depends on visit order even when the
  element set is identical.
"""

from __future__ import annotations

from repro.selfcheck.callgraph import CallGraph
from repro.selfcheck.registry import (OUTPUT_ROOT_PATTERN, SIM_PATH_MODULES,
                                      SIM_PATH_PREFIXES)
from repro.selfcheck.rules import Finding
from repro.selfcheck.worklist import reachable_with_paths


def sim_entries(graph: CallGraph) -> list[str]:
    return graph.entry_qualnames(module_prefixes=SIM_PATH_PREFIXES,
                                 modules=SIM_PATH_MODULES)


def output_roots(graph: CallGraph) -> list[str]:
    return sorted(qual for qual, fn in graph.project.functions.items()
                  if OUTPUT_ROOT_PATTERN.match(fn.name))


def check_determinism(graph: CallGraph) -> list[Finding]:
    findings: list[Finding] = []

    for qual in sorted(graph.effects):
        eff = graph.effects[qual]
        rel = _relpath(graph, qual)
        for site in eff.rng:
            findings.append(Finding(
                rule="det-global-rng", path=rel, line=site.lineno,
                qualname=qual, message=site.detail))
        for site in eff.float_accum:
            findings.append(Finding(
                rule="det-float-accum", path=rel, line=site.lineno,
                qualname=qual, message=site.detail))

    sim_paths = reachable_with_paths(graph.edges, sim_entries(graph))
    for qual in sorted(sim_paths):
        eff = graph.effects.get(qual)
        if eff is None:
            continue
        rel = _relpath(graph, qual)
        chain = sim_paths[qual]
        for site in eff.wallclock:
            findings.append(Finding(
                rule="det-wallclock", path=rel, line=site.lineno,
                qualname=qual,
                message=f"{site.detail} reachable from simulator code",
                call_path=chain))
        for site in eff.env:
            findings.append(Finding(
                rule="det-env-read", path=rel, line=site.lineno,
                qualname=qual,
                message=f"{site.detail} reachable from simulator code",
                call_path=chain))

    out_paths = reachable_with_paths(graph.edges, output_roots(graph))
    for qual in sorted(out_paths):
        eff = graph.effects.get(qual)
        if eff is None:
            continue
        rel = _relpath(graph, qual)
        chain = out_paths[qual]
        for site in eff.set_iters:
            findings.append(Finding(
                rule="det-set-iter", path=rel, line=site.lineno,
                qualname=qual,
                message=f"{site.detail} on a serialization/output path",
                call_path=chain))
    return findings


def _relpath(graph: CallGraph, qual: str) -> str:
    fn = graph.project.functions[qual]
    try:
        return fn.path.relative_to(graph.project.root).as_posix()
    except ValueError:  # pragma: no cover
        return fn.path.as_posix()
