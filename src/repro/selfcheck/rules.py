"""Selfcheck rule catalog and the finding record.

Every detector emits :class:`Finding` objects tagged with a rule id from
:data:`RULES`.  Severity semantics match ``repro lint``: *error* findings
always gate; *warning* findings gate only under ``--strict``.  See
``docs/SELFCHECK.md`` for the full catalog with examples and fixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"

#: rule id -> (severity, one-line description)
RULES: dict[str, tuple[str, str]] = {
    "iso-global-write": (
        ERROR,
        "shard-worker-reachable code writes module-global or class-level "
        "state (breaks shard isolation and fork/inline equivalence)"),
    "iso-shared-call": (
        ERROR,
        "shard-worker-reachable code calls a coordinator-shared class "
        "(MemoryModel/ProgressTracker) directly instead of going through "
        "the DeferredMemory/ShardGmem sentinels"),
    "iso-unmirrored-call": (
        ERROR,
        "worker-reachable duck-typed call could bind a coordinator-shared "
        "class and no sentinel class implements the method (the injection "
        "seam is broken: add the method to the sentinel)"),
    "det-global-rng": (
        ERROR,
        "module-global RNG use (random.* / legacy np.random.*); thread an "
        "explicitly seeded random.Random or np.random.default_rng instead"),
    "det-wallclock": (
        ERROR,
        "wall-clock read reachable from simulator code; results must be a "
        "pure function of config + seed"),
    "det-env-read": (
        ERROR,
        "os.environ read reachable from simulator code; configuration "
        "must flow through GPUConfig, not the process environment"),
    "det-set-iter": (
        ERROR,
        "iteration over an unordered set on a serialization/output path; "
        "wrap the iterable in sorted(...)"),
    "det-float-accum": (
        WARNING,
        "float accumulation over an unordered iteration; the rounding "
        "depends on hash order — accumulate over a sorted sequence"),
    "schema-pair-drift": (
        ERROR,
        "from_dict/from_json performs a hard read of a key its to_dict/"
        "to_json never produces (round-trip would raise KeyError)"),
    "schema-orphan-read": (
        WARNING,
        "from_dict/from_json tolerantly reads (via .get) a key the "
        "serializer never produces — dead key or silent field drop"),
    "schema-field-coverage": (
        WARNING,
        "dataclass field missing from its to_dict payload; the field is "
        "silently dropped on round-trip"),
    "schema-golden-drift": (
        ERROR,
        "schema-v1 key set of stats/journal/store drifted from the "
        "pinned golden; bump the schema version and goldens consciously"),
    "meta-bare-suppression": (
        ERROR,
        "selfcheck suppression comment without a justification; write "
        "`# selfcheck: ok[rule] -- reason`"),
    "meta-stale-baseline": (
        WARNING,
        "baseline entry matches no current finding; delete it"),
    "meta-unjustified-baseline": (
        ERROR,
        "baseline entry without a non-empty reason"),
}


@dataclass
class Finding:
    """One selfcheck violation, with location and evidence."""

    rule: str
    path: str  # project-root-relative posix path
    line: int
    qualname: str  # enclosing function/class, or module name
    message: str
    #: call-path evidence for reachability rules: entry → … → qualname
    call_path: list[str] = field(default_factory=list)
    suppressed: bool = False  # matched a justified inline suppression
    baselined: bool = False  # baseline file entry matched

    @property
    def severity(self) -> str:
        return RULES[self.rule][0]

    @property
    def active(self) -> bool:
        return not (self.suppressed or self.baselined)

    def gates(self, strict: bool) -> bool:
        """Does this finding fail the run?"""
        if not self.active:
            return False
        return self.severity == ERROR or strict

    def sort_key(self):
        return (self.severity != ERROR, self.rule, self.path, self.line)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "qualname": self.qualname,
            "message": self.message,
            "call_path": list(self.call_path),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
