"""repro — a reproduction of "Virtual Thread: Maximizing Thread-Level
Parallelism beyond GPU Scheduling Limit" (Yoon et al., ISCA 2016).

The package bundles a cycle-level SIMT GPU simulator (:mod:`repro.sim`),
the Virtual Thread CTA-virtualization architecture (:mod:`repro.core`),
a mini-ISA with assembler (:mod:`repro.isa`), a benchmark kernel library
(:mod:`repro.kernels`) and the experiment harness (:mod:`repro.analysis`).

Quickstart::

    from repro import GPU, GlobalMemory, scaled_fermi, assemble

    kernel = assemble(SAXPY_ASM)
    gmem = GlobalMemory()
    x = gmem.alloc("x", 1024); ...
    gpu = GPU(scaled_fermi(num_sms=2, arch="vt"))
    result = gpu.launch(kernel, grid_dim=8, gmem=gmem, params=(x, y))
    print(result.stats.summary())
"""

from repro.isa import Kernel, KernelBuilder, assemble
from repro.core import LimiterClass, OccupancyResult, occupancy, vt_overhead
from repro.sim import GPU, GlobalMemory, GPUConfig, LaunchResult, SimStats
from repro.sim.config import ArchMode, fermi_config, scaled_fermi

__version__ = "1.0.0"

__all__ = [
    "Kernel",
    "KernelBuilder",
    "assemble",
    "LimiterClass",
    "OccupancyResult",
    "occupancy",
    "vt_overhead",
    "GPU",
    "GlobalMemory",
    "GPUConfig",
    "LaunchResult",
    "SimStats",
    "ArchMode",
    "fermi_config",
    "scaled_fermi",
    "__version__",
]
