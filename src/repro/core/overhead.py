"""Hardware-overhead model for Virtual Thread.

The paper's cost argument: a context switch only moves *scheduling* state,
so the additional storage VT needs is a backup SRAM sized for the
scheduling state of the extra (virtual) CTAs, which is tiny next to the
register file and shared memory that stay in place.  This module counts
those bits for a given configuration, reproducing the overhead table.

Per-warp scheduling state:

* program counter — enough bits to index the largest kernel (we budget 32,
  as real hardware does),
* SIMT reconvergence stack — ``simt_stack_depth`` entries of
  (PC, reconvergence PC, 32-bit active mask),
* barrier-arrival bit and a handful of control bits.

Per-CTA state: barrier counter, state machine, base pointers into the
register file and shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.kernel import Kernel
from repro.sim.config import GPUConfig

PC_BITS = 32
MASK_BITS = 32
SIMT_STACK_DEPTH = 16  # architectural divergence-nesting budget (Fermi-like)
CTA_CONTROL_BITS = 64  # barrier counter, state, RF/smem base pointers


@dataclass(frozen=True)
class OverheadReport:
    """Backup storage VT adds to one SM, next to what stays in place."""

    virtual_cta_slots: int
    warps_per_backup_slot: int
    per_warp_bits: int
    per_cta_bits: int
    backup_bytes: int
    register_file_bytes: int
    shared_mem_bytes: int

    @property
    def overhead_fraction(self) -> float:
        """Backup SRAM as a fraction of the on-chip memory it virtualizes."""
        return self.backup_bytes / (self.register_file_bytes + self.shared_mem_bytes)

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("virtual CTA backup slots / SM", str(self.virtual_cta_slots)),
            ("warps per backup slot", str(self.warps_per_backup_slot)),
            ("per-warp scheduling state", f"{self.per_warp_bits} bits"),
            ("per-CTA control state", f"{self.per_cta_bits} bits"),
            ("backup SRAM / SM", f"{self.backup_bytes} B ({self.backup_bytes / 1024:.2f} KiB)"),
            ("register file / SM (stays in place)", f"{self.register_file_bytes // 1024} KiB"),
            ("shared memory / SM (stays in place)", f"{self.shared_mem_bytes // 1024} KiB"),
            ("overhead vs virtualized capacity", f"{self.overhead_fraction:.3%}"),
        ]


@dataclass(frozen=True)
class SwapFootprint:
    """What a register-spilling context switch would move for one CTA.

    The paper's VT never spills architectural registers — a switch moves
    scheduling state only, and :func:`vt_overhead` above prices exactly
    that.  This report answers the natural what-if: a design in the
    compiler-assisted-preemption family (Pai et al., see PAPERS.md) that
    *does* spill registers at a switch need only move the registers **live
    at the swap points** (warps park at barriers or just past long-latency
    global accesses), not the declared footprint.  Liveness comes from the
    static analysis package; the declared footprint is the upper bound the
    occupancy calculator charges.
    """

    kernel_name: str
    declared_regs: int
    live_regs: int  # max live at any barrier / post-global-load PC
    threads_per_cta: int

    def __post_init__(self):
        if self.live_regs > self.declared_regs:
            raise ValueError(
                f"{self.kernel_name}: liveness footprint {self.live_regs} "
                f"exceeds declared {self.declared_regs} registers")

    @property
    def declared_bytes(self) -> int:
        return self.threads_per_cta * self.declared_regs * 4

    @property
    def live_bytes(self) -> int:
        return self.threads_per_cta * self.live_regs * 4

    @property
    def compression(self) -> float:
        """Fraction of the declared spill volume liveness avoids."""
        if self.declared_bytes == 0:
            return 0.0
        return 1.0 - self.live_bytes / self.declared_bytes


def liveness_swap_footprint(kernel: Kernel) -> SwapFootprint:
    """Liveness-compressed swap-cost estimate for one kernel."""
    from repro.isa.analysis import liveness  # deferred: keeps core/ import-light

    info = liveness(kernel)
    return SwapFootprint(
        kernel_name=kernel.name,
        declared_regs=kernel.regs_per_thread,
        live_regs=info.swap_footprint_regs,
        threads_per_cta=kernel.threads_per_cta,
    )


def vt_overhead(cfg: GPUConfig | None = None, stack_depth: int = SIMT_STACK_DEPTH) -> OverheadReport:
    """Size VT's backup SRAM for ``cfg``.

    Backup slots are provisioned for the *extra* CTAs VT may keep resident
    beyond the scheduling limit: ``(multiplier - 1) × max_ctas_per_sm``
    slots, each holding the scheduling state of a worst-case CTA
    (``max_warps_per_sm / max_ctas_per_sm`` warps).
    """
    cfg = cfg or GPUConfig()
    extra_slots = max(1, int((cfg.vt_max_resident_multiplier - 1) * cfg.max_ctas_per_sm))
    warps_per_slot = max(1, cfg.max_warps_per_sm // cfg.max_ctas_per_sm)
    stack_entry_bits = 2 * PC_BITS + MASK_BITS
    per_warp = PC_BITS + stack_depth * stack_entry_bits + MASK_BITS + 8
    per_cta = CTA_CONTROL_BITS
    total_bits = extra_slots * (warps_per_slot * per_warp + per_cta)
    return OverheadReport(
        virtual_cta_slots=extra_slots,
        warps_per_backup_slot=warps_per_slot,
        per_warp_bits=per_warp,
        per_cta_bits=per_cta,
        backup_bytes=-(-total_bits // 8),
        register_file_bytes=cfg.registers_per_sm * 4,
        shared_mem_bytes=cfg.smem_per_sm,
    )
