"""The Virtual Thread (VT) architecture — the paper's contribution.

The stock GPU admits CTAs to an SM only while *both* the scheduling limit
(CTA slots, warp slots, thread slots) and the capacity limit (register
file, shared memory) hold, and every resident CTA is schedulable.  VT
decouples the two:

* **Admission** checks only the capacity limit (plus a provisioning cap on
  backup slots), so on-chip memory fills with CTAs.
* **Scheduling** keeps at most a scheduling-limit-sized subset ACTIVE;
  the remainder are INACTIVE — registers and shared memory stay resident,
  but they own no PC/SIMT-stack/scheduler entries.
* **Swapping**: when every warp of an active CTA is blocked on a
  long-latency (global-memory) stall, a context switch saves the CTA's
  small scheduling state to backup SRAM and installs a *ready* inactive
  CTA in its place.  Because the bulky state never moves, the switch costs
  a handful of cycles (``vt_swap_out/in_base + per_warp × warps``).

The swap engine is modeled as a single per-SM unit: one context switch in
flight at a time, with save and restore phases serialized.
"""

from __future__ import annotations

from repro.core.policies import SELECT_POLICIES, TRIGGER_POLICIES
from repro.sim.cta import CTA, CTAState
from repro.sim.ctamanager import FOREVER, CTAManagerBase


class VirtualThreadManager(CTAManagerBase):
    """CTA residency manager implementing Virtual Thread."""

    def __init__(self, cfg, stats):
        super().__init__(cfg, stats)
        self._trigger = TRIGGER_POLICIES[cfg.vt_trigger_policy]
        self._select = SELECT_POLICIES[cfg.vt_select_policy]
        # Swap engine state: at most one context switch in flight.
        self._swap_victim: CTA | None = None
        self._swap_incoming: CTA | None = None
        self._swap_phase_end = 0

    # -- limits -------------------------------------------------------------------

    def active_limit(self, kernel) -> int:
        """Scheduling-limit CTA count for this kernel (max ACTIVE CTAs)."""
        cfg = self.cfg
        per_warps = cfg.max_warps_per_sm // kernel.warps_per_cta(cfg.warp_size)
        per_threads = cfg.max_threads_per_sm // kernel.threads_per_cta
        return max(1, min(cfg.max_ctas_per_sm, per_warps, per_threads))

    def resident_limit(self, kernel) -> int:
        """Backup-slot provisioning cap on total resident (virtual) CTAs."""
        return max(1, int(self.cfg.vt_max_resident_multiplier * self.active_limit(kernel)))

    # -- admission -----------------------------------------------------------------

    def can_accept(self, kernel) -> bool:
        return (
            self.resources.capacity_fits(kernel)
            and len(self.resident) < self.resident_limit(kernel)
        )

    def on_assign(self, cta: CTA, now: int) -> None:
        super().on_assign(cta, now)
        if self.active_cta_count <= self.active_limit(cta.kernel):
            cta.state = CTAState.ACTIVE
        else:
            cta.state = CTAState.INACTIVE
            cta.became_inactive_at = now

    def on_cta_finish(self, cta: CTA, now: int) -> None:
        if cta is self._swap_victim or cta is self._swap_incoming:
            # Defensive: a CTA in the swap engine cannot retire (it cannot
            # issue), but keep the invariant explicit.
            raise RuntimeError("CTA finished while being context-switched")
        super().on_cta_finish(cta, now)

    # -- per-cycle swap engine -------------------------------------------------------

    def swap_in_flight(self) -> bool:
        return self._swap_victim is not None or self._swap_incoming is not None

    def next_event(self, now: int) -> int:
        """Earliest future cycle at which :meth:`update` would act, given
        that no warp issues anywhere before it.

        Three horizons exist (see the next-event contract in
        docs/ARCHITECTURE.md):

        * a context switch in flight finishes its current phase at
          ``_swap_phase_end`` (until then ``update`` only accrues one
          ``swap_busy_cycles`` per cycle, which the fast-forward engine
          bulk-credits);
        * an INACTIVE CTA becomes ready for activation when its earliest
          non-barrier warp's outstanding global load completes — that can
          enable both a slot fill and a pending trigger swap;
        * under the ``timeout`` trigger policy, a fully-stalled ACTIVE CTA
          fires at ``stall_since + vt_trigger_timeout`` even though no warp
          status changes.

        All other trigger/selection inputs are pure functions of warp
        statuses, and every status change is already an SM-level event.
        """
        if self._swap_victim is not None or self._swap_incoming is not None:
            return self._swap_phase_end
        event = FOREVER
        timeout_trigger = self.cfg.vt_trigger_policy == "timeout"
        timeout = self.cfg.vt_trigger_timeout
        for cta in self.resident:
            if cta.state is CTAState.INACTIVE:
                ready_at = self._activation_ready_at(cta, now)
                if now < ready_at < event:
                    event = ready_at
            elif (timeout_trigger and cta.state is CTAState.ACTIVE
                  and cta.stall_since is not None):
                fire_at = cta.stall_since + timeout
                if now < fire_at < event:
                    event = fire_at
        return event

    def _activation_ready_at(self, cta: CTA, now: int) -> int:
        """Earliest cycle at which ``cta.ready_for_activation`` can turn
        true: the min over its eligible warps of the outstanding global-load
        completion.  Returns ``now`` when it is ready already (no future
        event needed — a promotion either happened this cycle or waits on a
        slot/trigger, both of which are covered by other horizons)."""
        ready_at = FOREVER
        for warp in cta.warps:
            if warp.finished or warp.at_barrier:
                continue
            pending_until = warp.scoreboard.mem_pending_until()
            if pending_until <= now:
                return now
            if pending_until < ready_at:
                ready_at = pending_until
        return ready_at

    def update(self, now: int, warp_status) -> None:
        if self._swap_victim is not None or self._swap_incoming is not None:
            self._advance_swap(now)
            return
        self._fill_empty_active_slots(now)
        if self._swap_victim is None and self._swap_incoming is None:
            self._check_triggers(now, warp_status)

    def _advance_swap(self, now: int) -> None:
        if now < self._swap_phase_end:
            self.stats.swap_busy_cycles += 1
            return
        if self._swap_victim is not None:
            # Save phase done: victim's scheduling state is in backup SRAM.
            victim = self._swap_victim
            victim.state = CTAState.INACTIVE
            victim.became_inactive_at = now
            victim.stall_since = None
            self._swap_victim = None
            if self.faults is not None and self.faults.corrupt_swap(
                    self.sm_id, now, victim.cta_id):
                # Injected fault: the backup-SRAM valid bit flips and the
                # victim reappears ACTIVE without a SWAP_IN restore — an
                # illegal state-machine edge the sanitizer must catch.
                victim.state = CTAState.ACTIVE
            if self._swap_incoming is not None:
                incoming = self._swap_incoming
                incoming.state = CTAState.SWAP_IN
                _save, restore = self.cfg.vt_swap_cycles_for(incoming.num_warps)
                self._swap_phase_end = now + restore
                self.stats.swap_busy_cycles += 1
                return
        if self._swap_incoming is not None:
            incoming = self._swap_incoming
            incoming.state = CTAState.ACTIVE
            for warp in incoming.warps:
                warp.status_until = -1
            self._swap_incoming = None

    def _fill_empty_active_slots(self, now: int) -> None:
        """Promote a ready inactive CTA when an active slot is free (a CTA
        retired, or startup left slots empty)."""
        if not self.resident:
            return
        limit = self.active_limit(self.resident[0].kernel)
        if self.active_cta_count >= limit:
            return
        candidates = [
            c for c in self.resident
            if c.state is CTAState.INACTIVE and c.ready_for_activation(now)
        ]
        if not candidates:
            return
        incoming = self._select(candidates, now)
        incoming.state = CTAState.SWAP_IN
        _save, restore = self.cfg.vt_swap_cycles_for(incoming.num_warps)
        self._swap_incoming = incoming
        self._swap_phase_end = now + restore

    def _check_triggers(self, now: int, warp_status) -> None:
        inactive_ready = None
        for cta in self.resident:
            if cta.state is not CTAState.ACTIVE or now < cta.start_cycle:
                continue
            if not self._trigger(cta, warp_status, now, self.cfg):
                continue
            if inactive_ready is None:
                inactive_ready = [
                    c for c in self.resident
                    if c.state is CTAState.INACTIVE and c.ready_for_activation(now)
                ]
            if not inactive_ready:
                return
            incoming = self._select(inactive_ready, now)
            self._begin_swap(cta, incoming, now)
            return

    def _begin_swap(self, victim: CTA, incoming: CTA, now: int) -> None:
        victim.state = CTAState.SWAP_OUT
        victim.times_swapped_out += 1
        save, _restore = self.cfg.vt_swap_cycles_for(victim.num_warps)
        self._swap_victim = victim
        self._swap_incoming = incoming
        self._swap_phase_end = now + save
        self.stats.swaps += 1
        self.stats.swap_busy_cycles += 1

    # -- invariants (used by property tests) -------------------------------------

    def assert_invariants(self, now: int) -> None:
        """Raise if any architectural invariant is violated."""
        cfg = self.cfg
        if self.resources.regs_used > cfg.registers_per_sm:
            raise AssertionError("register file over capacity")
        if self.resources.smem_used > cfg.smem_per_sm:
            raise AssertionError("shared memory over capacity")
        if self.resident:
            limit = self.active_limit(self.resident[0].kernel)
            active_like = sum(
                1 for c in self.resident
                if c.state in (CTAState.ACTIVE, CTAState.SWAP_OUT, CTAState.SWAP_IN)
            )
            if active_like > limit + 1:
                # +1: during a switch the victim (draining) and incoming
                # (restoring) briefly coexist, as in the hardware proposal.
                raise AssertionError(
                    f"{active_like} CTAs hold scheduling structures, limit {limit}"
                )
            active_warps = sum(
                c.num_warps for c in self.resident if c.state is CTAState.ACTIVE
            )
            if active_warps > cfg.max_warps_per_sm:
                raise AssertionError("active warps exceed warp slots")
