"""Analytic occupancy calculator and limiter classification.

This reproduces the paper's motivation analysis: for each kernel, how many
CTAs can one SM hold under each individual resource constraint, which
constraint binds first, and — the paper's key observation — how much
on-chip *capacity* (registers, shared memory) goes unused when the
*scheduling* structures (CTA slots, warp slots, thread slots) bind first.

The arithmetic mirrors NVIDIA's occupancy calculator at CTA granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.config import GPUConfig


class LimiterClass(enum.Enum):
    """Which family of limits curtails a kernel's concurrency."""

    SCHEDULING = "scheduling"
    CAPACITY = "capacity"
    BALANCED = "balanced"


@dataclass(frozen=True)
class OccupancyResult:
    """Per-SM CTA residency under each constraint, for one kernel."""

    kernel_name: str
    warps_per_cta: int
    ctas_by_cta_slots: int
    ctas_by_warp_slots: int
    ctas_by_thread_slots: int
    ctas_by_registers: int
    ctas_by_smem: int

    @property
    def scheduling_limit_ctas(self) -> int:
        """CTAs/SM if only scheduling structures constrained residency."""
        return min(self.ctas_by_cta_slots, self.ctas_by_warp_slots, self.ctas_by_thread_slots)

    @property
    def capacity_limit_ctas(self) -> int:
        """CTAs/SM if only register file + shared memory constrained it."""
        return min(self.ctas_by_registers, self.ctas_by_smem)

    @property
    def baseline_ctas(self) -> int:
        """CTAs/SM on the stock GPU (both families enforced)."""
        return min(self.scheduling_limit_ctas, self.capacity_limit_ctas)

    @property
    def limiter(self) -> LimiterClass:
        if self.scheduling_limit_ctas < self.capacity_limit_ctas:
            return LimiterClass.SCHEDULING
        if self.capacity_limit_ctas < self.scheduling_limit_ctas:
            return LimiterClass.CAPACITY
        return LimiterClass.BALANCED

    @property
    def binding_resource(self) -> str:
        """Name of the single tightest constraint."""
        constraints = {
            "cta-slots": self.ctas_by_cta_slots,
            "warp-slots": self.ctas_by_warp_slots,
            "thread-slots": self.ctas_by_thread_slots,
            "registers": self.ctas_by_registers,
            "shared-mem": self.ctas_by_smem,
        }
        return min(constraints, key=constraints.get)

    @property
    def vt_headroom(self) -> float:
        """How many× more CTAs fit under VT (capacity only) vs baseline —
        the paper's opportunity metric for scheduling-limited kernels."""
        if self.baseline_ctas == 0:
            return 0.0
        return self.capacity_limit_ctas / self.baseline_ctas

    def occupancy_fraction(self, cfg: GPUConfig) -> float:
        """Baseline warp occupancy: resident warps / warp slots."""
        return min(1.0, self.baseline_ctas * self.warps_per_cta / cfg.max_warps_per_sm)


def limiter_summary(kernel, cfg: GPUConfig | None = None) -> dict:
    """Canonical limiter classification row for one kernel.

    The single source of truth every consumer reads — the E2/X2/X4
    experiment tables, ``repro list``, and the static performance oracle
    (:mod:`repro.isa.analysis.perf`) — instead of re-deriving the
    scheduling-vs-capacity call from raw footprints.
    """
    occ = occupancy(kernel, cfg)
    return {
        "limiter": occ.limiter.value,
        "baseline_ctas": occ.baseline_ctas,
        "capacity_ctas": occ.capacity_limit_ctas,
        "headroom": occ.vt_headroom,
        "binding": occ.binding_resource,
        "occupancy": occ,
    }


def occupancy(kernel, cfg: GPUConfig | None = None) -> OccupancyResult:
    """Compute per-SM residency limits for ``kernel`` under ``cfg``."""
    cfg = cfg or GPUConfig()
    threads = kernel.threads_per_cta
    warps = kernel.warps_per_cta(cfg.warp_size)
    regs_per_cta = kernel.regs_per_thread * threads
    unbounded = 10**9
    return OccupancyResult(
        kernel_name=kernel.name,
        warps_per_cta=warps,
        ctas_by_cta_slots=cfg.max_ctas_per_sm,
        ctas_by_warp_slots=cfg.max_warps_per_sm // warps,
        ctas_by_thread_slots=cfg.max_threads_per_sm // threads,
        ctas_by_registers=cfg.registers_per_sm // regs_per_cta if regs_per_cta else unbounded,
        ctas_by_smem=cfg.smem_per_sm // kernel.smem_bytes if kernel.smem_bytes else unbounded,
    )
