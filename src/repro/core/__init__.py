"""The paper's contribution: Virtual Thread CTA virtualization.

* :mod:`repro.core.vt` — the Virtual Thread residency manager: CTAs are
  admitted up to the capacity limit, kept in ACTIVE/INACTIVE states, and
  context-switched on whole-CTA long-latency stalls.
* :mod:`repro.core.policies` — swap-trigger and incoming-CTA-selection
  policies (the paper's mechanism plus ablation variants).
* :mod:`repro.core.occupancy` — analytic occupancy calculator and the
  scheduling-limited vs capacity-limited classification that motivates
  the paper.
* :mod:`repro.core.overhead` — the hardware-overhead model for VT's
  backup SRAM and control logic.
"""

from repro.core.occupancy import OccupancyResult, occupancy, LimiterClass
from repro.core.overhead import vt_overhead, OverheadReport
from repro.core.vt import VirtualThreadManager

__all__ = [
    "OccupancyResult",
    "occupancy",
    "LimiterClass",
    "vt_overhead",
    "OverheadReport",
    "VirtualThreadManager",
]
