"""Virtual Thread swap policies.

Two decisions are policy-pluggable, mirroring the knobs the paper's design
space offers:

* **Trigger** — when is an active CTA eligible to be swapped out?
  The paper's mechanism swaps "when all the warps in an active CTA hit a
  long latency stall"; ``majority-stalled`` and ``timeout`` are ablation
  variants used by experiment E12.
* **Selection** — which ready inactive CTA is swapped in?  ``oldest-ready``
  (FIFO over time-of-deactivation, the paper-style choice that bounds
  starvation) or ``most-ready`` (most warps immediately runnable).

Policies are pure functions over warp-status summaries so they can be
unit-tested without a simulator.
"""

from __future__ import annotations

from repro.sim.smcore import ST_ALU, ST_BARRIER, ST_FINISHED, ST_MEM, ST_READY


def cta_stall_profile(cta, warp_status) -> tuple[int, int, int]:
    """(#mem-stalled, #otherwise-unfinished, #unfinished) for a CTA.

    ``warp_status`` maps a warp to its status code.  Warps parked at a
    barrier count as mem-stalled *followers*: they cannot run until the
    stragglers (which are mem-stalled when this matters) arrive.
    """
    mem = other = unfinished = 0
    for warp in cta.warps:
        status = warp_status(warp)
        if status == ST_FINISHED:
            continue
        unfinished += 1
        if status in (ST_MEM, ST_BARRIER):
            mem += 1
        else:
            other += 1
    return mem, other, unfinished


def _has_true_mem_stall(cta, warp_status) -> bool:
    return any(warp_status(w) == ST_MEM for w in cta.warps)


def trigger_all_stalled(cta, warp_status, now: int, cfg) -> bool:
    """The paper's trigger: every unfinished warp is long-latency stalled
    (or barrier-parked behind one), with at least one true memory stall."""
    mem, other, unfinished = cta_stall_profile(cta, warp_status)
    return unfinished > 0 and other == 0 and _has_true_mem_stall(cta, warp_status)


def trigger_majority_stalled(cta, warp_status, now: int, cfg) -> bool:
    """Ablation: swap as soon as more than half the warps are stalled.

    More eager — swaps away CTAs that still have runnable warps, trading
    issue opportunities for earlier reactivation of fresh CTAs.
    """
    mem, other, unfinished = cta_stall_profile(cta, warp_status)
    return unfinished > 0 and mem * 2 > unfinished and _has_true_mem_stall(cta, warp_status)


def trigger_timeout(cta, warp_status, now: int, cfg) -> bool:
    """Ablation: the all-stalled condition must persist for
    ``cfg.vt_trigger_timeout`` cycles before a swap fires (hysteresis
    against swapping on stalls that are about to resolve)."""
    if not trigger_all_stalled(cta, warp_status, now, cfg):
        cta.stall_since = None
        return False
    if cta.stall_since is None:
        cta.stall_since = now
        return False
    return now - cta.stall_since >= cfg.vt_trigger_timeout


def select_oldest_ready(candidates, now: int):
    """FIFO over deactivation time: bounds starvation (paper-style)."""
    return min(candidates, key=lambda c: c.became_inactive_at)


def select_most_recent(candidates, now: int):
    """LIFO over deactivation time: cache-locality-aware (extension).

    Re-activating the most recently deactivated CTA keeps the set of CTAs
    touching the L1 over any window small, trading fairness for locality —
    a mitigation for the cache-thrash losses oversubscription causes on
    irregular kernels (see experiment X1).
    """
    return max(candidates, key=lambda c: c.became_inactive_at)


def select_most_ready(candidates, now: int):
    """Most immediately runnable warps first."""

    def runnable(cta) -> int:
        return sum(
            1
            for w in cta.warps
            if not w.finished and not w.at_barrier and not w.scoreboard.has_mem_pending(now)
        )

    return max(candidates, key=runnable)


TRIGGER_POLICIES = {
    "all-stalled": trigger_all_stalled,
    "majority-stalled": trigger_majority_stalled,
    "timeout": trigger_timeout,
}

SELECT_POLICIES = {
    "oldest-ready": select_oldest_ready,
    "most-ready": select_most_ready,
    "most-recent": select_most_recent,
}
