"""Quickstart: assemble a kernel, run it on the simulated GPU, read results.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import GPU, GlobalMemory, assemble, occupancy, scaled_fermi

# 1. Write a kernel in the mini SIMT assembly.  This is saxpy:
#    out[i] = 2.5 * x[i] + y[i], one element per thread.
SAXPY = """
.kernel saxpy
.regs 13
.cta 128
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // global thread id
    SHL   r4, r3, #2            // byte offset (4-byte words)
    S2R   r5, %param0
    IADD  r6, r5, r4
    LDG   r7, [r6]              // x[i]
    S2R   r8, %param1
    IADD  r9, r8, r4
    LDG   r10, [r9]             // y[i]
    FMUL  r7, r7, #2.5
    FADD  r7, r7, r10
    S2R   r11, %param2
    IADD  r12, r11, r4
    STG   [r12], r7             // out[i]
    EXIT
"""


def main():
    kernel = assemble(SAXPY)
    print(kernel.disassemble())

    # 2. Ask the occupancy calculator what limits this kernel's residency.
    occ = occupancy(kernel)
    print(f"\nlimiter: {occ.limiter.value} "
          f"(baseline {occ.baseline_ctas} CTAs/SM, capacity would fit {occ.capacity_limit_ctas})")

    # 3. Allocate inputs in simulated global memory.
    grid = 32
    n = 128 * grid
    rng = np.random.default_rng(0)
    x, y = rng.random(n), rng.random(n)

    for arch in ("baseline", "vt"):
        gmem = GlobalMemory()
        gmem.alloc("x", n)
        gmem.alloc("y", n)
        gmem.alloc("out", n)
        gmem.write("x", x)
        gmem.write("y", y)

        # 4. Launch on a 2-SM Fermi-class GPU under the chosen architecture.
        gpu = GPU(scaled_fermi(num_sms=2, arch=arch))
        result = gpu.launch(
            kernel, grid_dim=grid, gmem=gmem,
            params=(gmem.base("x"), gmem.base("y"), gmem.base("out")),
        )

        # 5. Verify the computation and inspect the timing statistics.
        assert np.allclose(result.read("out"), 2.5 * x + y), "wrong results!"
        print(f"\n--- {arch} ---")
        print(result.stats.summary())


if __name__ == "__main__":
    main()
