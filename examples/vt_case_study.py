"""Virtual Thread case study: the paper's story on one kernel.

Walks the `stride` latency microbenchmark through the whole argument:

1. the occupancy calculator shows the scheduling limit binds,
2. the baseline run starves on memory (idle-cycle breakdown),
3. VT converts idle capacity into resident CTAs and recovers the stalls,
4. the ideal-sched upper bound confirms VT captures most of the headroom,
5. a swap-cost sweep shows why moving only scheduling state matters.

Run with:  python examples/vt_case_study.py
"""

from repro import GPU, occupancy, scaled_fermi
from repro.analysis import CTATracer, format_table
from repro.kernels import get

BENCH = get("stride")
CFG = scaled_fermi(num_sms=2)


def run(arch, **overrides):
    prep = BENCH.prepare(1.0)
    gpu = GPU(CFG.with_(arch=arch, **overrides))
    result = gpu.launch(BENCH.kernel, prep.grid_dim, prep.gmem, prep.params)
    prep.check(result)
    return result.stats


def main():
    occ = occupancy(BENCH.kernel, CFG)
    print(f"kernel: {BENCH.name} ({BENCH.description})")
    print(f"limiter: {occ.limiter.value} via {occ.binding_resource}; "
          f"baseline {occ.baseline_ctas} CTAs/SM, capacity fits {occ.capacity_limit_ctas} "
          f"({occ.vt_headroom:.1f}x headroom)\n")

    stats = {arch: run(arch) for arch in ("baseline", "vt", "ideal-sched")}
    rows = []
    for arch, s in stats.items():
        breakdown = s.idle_breakdown()
        rows.append((
            arch, s.cycles, f"{s.ipc:.3f}",
            f"{s.avg_resident_warps:.1f}",
            f"{breakdown['mem']:.0%}", s.total_swaps,
            f"x{stats['baseline'].cycles / s.cycles:.3f}",
        ))
    print(format_table(
        ("architecture", "cycles", "IPC", "resident warps/SM", "idle on memory", "swaps", "speedup"),
        rows,
        title="Baseline starves; VT fills the gap; ideal-sched is the bound",
    ))

    print("\nSwap-cost sweep (why moving only PCs + SIMT stacks matters):")
    rows = []
    for base, per_warp in ((0, 0), (2, 1), (8, 4), (32, 16), (128, 64)):
        s = run("vt", vt_swap_out_base=base, vt_swap_out_per_warp=per_warp,
                vt_swap_in_base=base, vt_swap_in_per_warp=per_warp)
        rows.append((f"{base}+{per_warp}/warp", s.cycles,
                     f"x{stats['baseline'].cycles / s.cycles:.3f}", s.total_swaps))
    print(format_table(("save/restore cost", "cycles", "speedup", "swaps"), rows))
    print("\nA full-state context switch would sit at the bottom of this table;")
    print("VT's few-cycle switch sits at the top — that asymmetry is the paper.")

    print("\nCTA lifecycle under VT (watch active slots rotate through the")
    print("virtual CTA pool as stalled CTAs are swapped out):")
    prep = BENCH.prepare(0.5)
    tracer = CTATracer(stride=32)
    gpu = GPU(CFG.with_(arch="vt", num_sms=1))
    result = gpu.launch(BENCH.kernel, prep.grid_dim, prep.gmem, prep.params, tracer=tracer)
    prep.check(result)
    print(tracer.render_timeline(max_ctas=16, width=72))


if __name__ == "__main__":
    main()
