"""Occupancy explorer: where does the scheduling limit bite?

Sweeps CTA size and register footprint, classifies each point with the
occupancy calculator, and prints the map of scheduling- vs capacity-
limited regions — the design space behind the paper's motivation.

Run with:  python examples/occupancy_explorer.py
"""

from repro import KernelBuilder, occupancy, scaled_fermi
from repro.analysis import format_table
from repro.core.occupancy import LimiterClass


def probe(threads: int, regs: int, smem: int = 0):
    builder = KernelBuilder("probe", regs_per_thread=regs, smem_bytes=smem,
                            cta_dim=(threads, 1, 1))
    builder.exit()
    return occupancy(builder.build(), CFG)


CFG = scaled_fermi(num_sms=2)

SYMBOL = {
    LimiterClass.SCHEDULING: "S",
    LimiterClass.CAPACITY: "C",
    LimiterClass.BALANCED: "=",
}


def limiter_map():
    thread_points = (32, 64, 128, 256, 512)
    reg_points = (8, 16, 24, 32, 40, 48, 63)
    rows = []
    for regs in reg_points:
        row = [f"{regs} regs"]
        for threads in thread_points:
            occ = probe(threads, regs)
            row.append(f"{SYMBOL[occ.limiter]} {occ.baseline_ctas}/{occ.capacity_limit_ctas}")
        rows.append(row)
    headers = ["regs \\ CTA", *(f"{t} thr" for t in thread_points)]
    print(format_table(headers, rows,
                       title="Limiter map: S=scheduling C=capacity (baseline/capacity CTAs per SM)"))
    print("\nReading the map: every 'S' cell wastes on-chip memory the")
    print("scheduling structures cannot use — exactly the headroom Virtual")
    print("Thread converts into extra resident CTAs.")


def smem_effect():
    print()
    rows = []
    for smem in (0, 2048, 4096, 8192, 16384):
        occ = probe(threads=128, regs=16, smem=smem)
        rows.append((f"{smem} B", occ.baseline_ctas, occ.capacity_limit_ctas,
                     occ.limiter.value, occ.binding_resource))
    print(format_table(
        ("smem/CTA", "baseline CTAs", "capacity CTAs", "limiter", "binding"),
        rows,
        title="Shared memory pushes a 128-thread kernel toward the capacity limit",
    ))


if __name__ == "__main__":
    limiter_map()
    smem_effect()
