"""Full BFS traversal: host-style iteration over kernel launches.

Real GPU applications alternate host logic with kernel launches; this
example drives the level-synchronous BFS kernel in a host loop until the
frontier empties, re-using the same device memory across launches —
exactly how Rodinia's BFS runs.  Each level's expansion is verified
against a pure-Python BFS at the end.

Run with:  python examples/bfs_traversal.py
"""

import numpy as np

from repro import GPU, GlobalMemory, scaled_fermi
from repro.kernels.bfs import CTA_THREADS, KERNEL
from repro.workloads.graphs import INF_LEVEL, bfs_levels, random_csr_graph


def main():
    num_nodes = CTA_THREADS * 24
    row_ptr, col_idx = random_csr_graph(num_nodes, avg_degree=4, seed=99)

    gmem = GlobalMemory(1 << 23)
    gmem.alloc("rowptr", num_nodes + 1)
    gmem.alloc("col", max(1, len(col_idx)))
    gmem.alloc("level", num_nodes)
    gmem.write("rowptr", row_ptr)
    gmem.write("col", col_idx)
    level = np.full(num_nodes, float(INF_LEVEL))
    level[0] = 0.0
    gmem.write("level", level)

    gpu = GPU(scaled_fermi(num_sms=2, arch="vt"))
    grid = num_nodes // CTA_THREADS

    current = 0
    total_cycles = 0
    while True:
        result = gpu.launch(
            KERNEL, grid, gmem,
            params=(gmem.base("rowptr"), gmem.base("col"), gmem.base("level"),
                    num_nodes, current),
        )
        total_cycles += result.stats.cycles
        after = result.read("level")
        frontier = int((after == current + 1).sum())
        print(f"level {current + 1}: frontier {frontier:5d} nodes, "
              f"{result.stats.cycles:6d} cycles, {result.stats.total_swaps} swaps")
        if frontier == 0:
            break
        current += 1

    reference = bfs_levels(row_ptr, col_idx, source=0)
    assert np.array_equal(gmem.read("level", num_nodes), reference), "BFS mismatch!"
    reached = int((reference < INF_LEVEL).sum())
    print(f"\ntraversal complete: {reached}/{num_nodes} nodes reached in "
          f"{current + 1} levels, {total_cycles} simulated cycles — verified against CPU BFS")


if __name__ == "__main__":
    main()
