"""Build a kernel programmatically with KernelBuilder (no assembly text).

The kernel computes per-CTA dot-product partials with a shared-memory
tree reduction — the same structure as the library's `reduction`
benchmark, but constructed through the fluent builder API.

Run with:  python examples/custom_kernel.py
"""

import numpy as np

from repro import GPU, GlobalMemory, KernelBuilder, scaled_fermi
from repro.isa.instruction import Imm

CTA = 128


def build_dot_kernel():
    b = KernelBuilder("dot", regs_per_thread=16, smem_bytes=CTA * 4, cta_dim=(CTA, 1, 1))
    # gtid = ctaid * ntid + tid ; byte offset in r4
    b.s2r(0, "ctaid_x").s2r(1, "ntid_x").s2r(2, "tid_x")
    b.imad(3, 0, 1, 2)
    b.shl(4, 3, Imm(2))
    # product = x[i] * y[i]
    b.s2r(5, "param0").iadd(5, 5, 4).ldg(6, 5)
    b.s2r(7, "param1").iadd(7, 7, 4).ldg(8, 7)
    b.fmul(6, 6, 8)
    # smem[tid] = product ; barrier
    b.shl(9, 2, Imm(2))
    b.sts(9, 6)
    b.bar()
    # tree reduction over shared memory, stride halves each level
    b.movi(10, CTA // 2)
    b.label("level")
    b.setp("lt", 11, 2, 10)           # tid < stride?
    b.shl(12, 10, Imm(2))
    b.iadd(12, 9, 12)                 # partner address
    b.lds(13, 9, pred=11)
    b.lds(14, 12, pred=11)
    b.fadd(13, 13, 14, pred=11)
    b.sts(9, 13, pred=11)
    b.bar()
    b.shr(10, 10, Imm(1))
    b.setp("ge", 11, 10, Imm(1))
    b.bra("level", pred=11)
    # thread 0 stores the CTA partial
    b.setp("eq", 11, 2, Imm(0))
    b.movi(15, 0)
    b.lds(13, 15, pred=11)
    b.s2r(14, "param2")
    b.shl(15, 0, Imm(2))
    b.iadd(14, 14, 15)
    b.stg(14, 13, pred=11)
    b.exit()
    return b.build()


def main():
    kernel = build_dot_kernel()
    print(kernel.disassemble())

    grid = 24
    n = CTA * grid
    rng = np.random.default_rng(7)
    x, y = rng.random(n), rng.random(n)

    gmem = GlobalMemory()
    gmem.alloc("x", n)
    gmem.alloc("y", n)
    gmem.alloc("partial", grid)
    gmem.write("x", x)
    gmem.write("y", y)

    gpu = GPU(scaled_fermi(num_sms=2, arch="vt"))
    result = gpu.launch(kernel, grid, gmem,
                        params=(gmem.base("x"), gmem.base("y"), gmem.base("partial")))

    partials = result.read("partial")
    expected = (x * y).reshape(grid, CTA).sum(axis=1)
    assert np.allclose(partials, expected), "device partials disagree with numpy"
    print(f"\ndot(x, y) = {partials.sum():.6f}  (numpy: {float(x @ y):.6f})")
    print(result.stats.summary())


if __name__ == "__main__":
    main()
